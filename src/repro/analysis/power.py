"""Dynamic power analyzer.

Switching power: ``P = sum over nets a * C * V^2 * f`` with per-net
activity factors.  Units: C in fF, V in volts, f in GHz -> power in uW.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.design import Design
from repro.netlist.net import Net


@dataclass
class PowerReport:
    """Per-net and aggregate dynamic power (uW)."""

    per_net: Dict[str, float] = field(default_factory=dict)
    total: float = 0.0
    clock: float = 0.0

    @property
    def clock_fraction(self) -> float:
        return self.clock / self.total if self.total > 0 else 0.0


class PowerAnalyzer:
    """Activity-based switching power over the design's wire loads."""

    def __init__(self, design: Design, vdd: float = 1.8,
                 activity: float = 0.1) -> None:
        self.design = design
        self.vdd = vdd
        self.activity = activity

    def _frequency_ghz(self) -> float:
        return 1000.0 / self.design.constraints.cycle_time  # ps -> GHz

    def net_power(self, net: Net) -> float:
        """Dynamic power of one net (uW).

        Clock nets toggle every cycle (activity 1); data nets use the
        configured average activity.
        """
        cap = self.design.timing.net_electrical(net).total_cap
        act = 1.0 if net.is_clock else self.activity
        # fF * V^2 * GHz = uW
        return act * cap * self.vdd ** 2 * self._frequency_ghz()

    def analyze(self) -> PowerReport:
        report = PowerReport()
        for net in self.design.netlist.nets():
            if net.driver() is None:
                continue
            p = self.net_power(net)
            report.per_net[net.name] = p
            report.total += p
            if net.is_clock:
                report.clock += p
        return report
