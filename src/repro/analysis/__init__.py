"""Additional incremental analyzers and design reports.

The transformational approach is explicitly open-ended about metrics:
"target a variety of metrics including noise, yield and
manufacturability".  This package provides the noise and power
analyzers that transforms can couple to, plus congestion maps and a
combined design report.
"""

from repro.analysis.noise import NoiseAnalyzer, NoiseReport
from repro.analysis.power import PowerAnalyzer, PowerReport
from repro.analysis.congestion import CongestionReport, congestion_report
from repro.analysis.yield_model import YieldAnalyzer, YieldReport
from repro.analysis.timing_report import TimingPath, extract_path, report_timing
from repro.analysis.histogram import QorSummary, SlackHistogram, qor_summary, slack_histogram

__all__ = [
    "NoiseAnalyzer",
    "NoiseReport",
    "PowerAnalyzer",
    "PowerReport",
    "CongestionReport",
    "congestion_report",
    "YieldAnalyzer",
    "YieldReport",
    "TimingPath",
    "extract_path",
    "report_timing",
    "QorSummary",
    "SlackHistogram",
    "qor_summary",
    "slack_histogram",
]
