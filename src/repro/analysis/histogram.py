"""Slack distribution reporting (QoR dashboards).

``slack_histogram`` buckets endpoint slacks; ``qor_summary`` is the
one-line quality-of-results row designers track across flow runs:
WNS / TNS / failing endpoints / wirelength / area.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.design import Design
from repro.timing.engine import INF


@dataclass
class SlackHistogram:
    """Endpoint slack distribution."""

    edges: List[float]
    counts: List[int]
    worst: float
    failing: int

    def format(self, width: int = 40) -> str:
        peak = max(self.counts) if self.counts else 1
        lines = ["Endpoint slack histogram (worst %.1f ps, %d failing)"
                 % (self.worst, self.failing)]
        for (lo, hi), count in zip(zip(self.edges, self.edges[1:]),
                                   self.counts):
            bar = "#" * max(1 if count else 0,
                            round(width * count / max(peak, 1)))
            lines.append("%8.0f .. %8.0f | %4d %s" % (lo, hi, count, bar))
        return "\n".join(lines)


def slack_histogram(design: Design, buckets: int = 10) -> SlackHistogram:
    """Bucket all finite endpoint slacks into ``buckets`` equal bins."""
    engine = design.timing
    slacks = [engine.slack(p) for p in engine.endpoints()]
    slacks = [s for s in slacks if s < INF]
    if not slacks:
        return SlackHistogram(edges=[0.0, 0.0], counts=[0],
                              worst=INF, failing=0)
    lo, hi = min(slacks), max(slacks)
    if hi <= lo:
        hi = lo + 1.0
    span = (hi - lo) / buckets
    edges = [lo + i * span for i in range(buckets + 1)]
    counts = [0] * buckets
    for s in slacks:
        idx = min(buckets - 1, int((s - lo) / span))
        counts[idx] += 1
    return SlackHistogram(edges=edges, counts=counts, worst=lo,
                          failing=sum(1 for s in slacks if s < 0))


@dataclass
class QorSummary:
    """One row of quality-of-results."""

    wns: float
    tns: float
    failing_endpoints: int
    wirelength: float
    cell_area: float
    icells: int

    def row(self) -> str:
        return ("WNS %8.1f  TNS %10.1f  FEP %5d  WL %9.0f  "
                "area %9.0f  icells %5d"
                % (self.wns, self.tns, self.failing_endpoints,
                   self.wirelength, self.cell_area, self.icells))


def qor_summary(design: Design) -> QorSummary:
    """Snapshot the design's QoR row."""
    engine = design.timing
    slacks = [engine.slack(p) for p in engine.endpoints()]
    finite = [s for s in slacks if s < INF]
    return QorSummary(
        wns=min(finite) if finite else INF,
        tns=sum(min(0.0, s) for s in finite),
        failing_endpoints=sum(1 for s in finite if s < 0),
        wirelength=design.total_wirelength(),
        cell_area=design.total_cell_area(),
        icells=design.icell_count(),
    )
