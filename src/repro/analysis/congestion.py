"""Congestion maps over the placement image."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.design import Design


@dataclass
class CongestionReport:
    """Bin-level congestion summary.

    ``hotspots`` are bins whose demand/capacity ratio exceeds the
    threshold, most congested first.
    """

    max_congestion: float
    avg_congestion: float
    total_wire_overflow: float
    hotspots: List[Tuple[int, int, float]] = field(default_factory=list)
    cell_overflow: float = 0.0

    @property
    def clean(self) -> bool:
        return self.max_congestion <= 1.0 and self.cell_overflow <= 0.0


def congestion_report(design: Design,
                      hotspot_threshold: float = 0.9) -> CongestionReport:
    """Summarise routing and cell congestion of the current image.

    Requires the global router to have published wire usage (its
    ``route()`` does that); before routing, wire congestion is zero and
    only cell-area congestion is meaningful.
    """
    ratios = []
    hotspots = []
    overflow = 0.0
    for b in design.grid.bins():
        c = b.congestion
        ratios.append(c)
        overflow += b.wire_overflow
        if c > hotspot_threshold:
            hotspots.append((b.ix, b.iy, c))
    hotspots.sort(key=lambda t: -t[2])
    return CongestionReport(
        max_congestion=max(ratios) if ratios else 0.0,
        avg_congestion=sum(ratios) / len(ratios) if ratios else 0.0,
        total_wire_overflow=overflow,
        hotspots=hotspots,
        cell_overflow=design.grid.total_overflow(),
    )
