"""Durable flow state: on-disk snapshots, journaled runs, resume.

PR 1's ``repro.guard`` made transforms transactional *within* a
process; this package makes the whole flow durable *across* processes.
A run owns a directory (``RunDir``) holding a write-ahead journal of
every guarded invocation plus full design snapshots at cut-status
milestones; ``python -m repro tps --run-dir DIR --resume`` reloads the
latest snapshot into a fresh process and continues the scenario from
the first unfinished phase, with crash-implicated transforms
quarantined persistently.
"""

from repro.persist.journal import Journal, JournalError
from repro.persist.rundir import (
    DIE_EXIT_CODE,
    FlowPersist,
    PersistConfig,
    RunDir,
    RunDirError,
    scan_resume,
)
from repro.persist.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    SnapshotError,
    design_state,
    read_snapshot,
    rebuild_design,
    restore_design,
    write_snapshot,
)

__all__ = [
    "DIE_EXIT_CODE",
    "FlowPersist",
    "Journal",
    "JournalError",
    "PersistConfig",
    "RunDir",
    "RunDirError",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "design_state",
    "read_snapshot",
    "rebuild_design",
    "restore_design",
    "scan_resume",
    "write_snapshot",
]
