"""Durable flow state: on-disk snapshots, journaled runs, resume.

PR 1's ``repro.guard`` made transforms transactional *within* a
process; this package makes the whole flow durable *across* processes.
A run owns a directory (``RunDir``) holding a write-ahead journal of
every guarded invocation plus full design snapshots at cut-status
milestones; ``python -m repro tps --run-dir DIR --resume`` reloads the
latest snapshot into a fresh process and continues the scenario from
the first unfinished phase, with crash-implicated transforms
quarantined persistently.

This PR makes persistence *incremental*, the same way the paper makes
analysis incremental: in delta mode each milestone writes only what
changed since the chain's base full snapshot
(:mod:`repro.persist.delta`), and :meth:`Journal.compact` bounds the
journal tail a resume must replay.

Storage-fault tolerance: every durable byte routes through the
:mod:`repro.persist.io` shim (retry/abort policy, deterministic fault
injection, parent-directory fsyncs after atomic renames), and
:mod:`repro.persist.fsck` scrubs — and with ``--repair`` heals — run
directories and fleet state dirs offline.
"""

from repro.persist.io import (
    IO_EXIT_CODE,
    IoFatalError,
    IoPolicy,
    fsync_dir,
    sweep_tmp,
)
from repro.persist.fsck import (
    REPORT_FORMAT as FSCK_REPORT_FORMAT,
    fsck_path,
    fsck_run_dir,
    fsck_state_dir,
)
from repro.persist.delta import (
    DELTA_FORMAT,
    DELTA_VERSION,
    apply_delta,
    make_delta,
    read_delta,
    write_delta,
)
from repro.persist.journal import Journal, JournalError
from repro.persist.resume import ResumedRun, load_resume
from repro.persist.rundir import (
    DIE_EXIT_CODE,
    FlowPersist,
    PersistConfig,
    RunDir,
    RunDirError,
    RunFencedError,
    load_snapshot_payload,
    scan_resume,
)
from repro.persist.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    SnapshotError,
    design_state,
    read_snapshot,
    rebuild_design,
    restore_design,
    write_payload,
    write_snapshot,
)

__all__ = [
    "DELTA_FORMAT",
    "DELTA_VERSION",
    "DIE_EXIT_CODE",
    "FSCK_REPORT_FORMAT",
    "FlowPersist",
    "IO_EXIT_CODE",
    "IoFatalError",
    "IoPolicy",
    "Journal",
    "JournalError",
    "PersistConfig",
    "ResumedRun",
    "RunDir",
    "RunDirError",
    "RunFencedError",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "apply_delta",
    "design_state",
    "fsck_path",
    "fsck_run_dir",
    "fsck_state_dir",
    "fsync_dir",
    "load_resume",
    "load_snapshot_payload",
    "make_delta",
    "read_delta",
    "read_snapshot",
    "rebuild_design",
    "restore_design",
    "scan_resume",
    "sweep_tmp",
    "write_delta",
    "write_payload",
    "write_snapshot",
]
