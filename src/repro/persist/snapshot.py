"""On-disk design snapshots: serialize a full ``Design``, exactly.

A snapshot is a gzip-compressed JSON document carrying everything a
flow can observe about a :class:`~repro.design.Design` — netlist
topology and iteration order, cell geometry/attributes/tags, net
scalars, die/blockages/constraints, bin-grid resolution, Steiner
bin-side, timing mode and wire model, the design RNG state and the
unique-name counter — plus a ``signature`` computed by
:func:`repro.guard.checkpoint.state_signature`.  Both load paths
(:func:`rebuild_design` into a fresh object, :func:`restore_design`
in place through the netlist mutation API) re-verify that signature,
so a reload is *provably* bit-identical to the serialized state or it
raises :class:`SnapshotError`.

Files are written to a temp path and ``os.replace``d, so a crash
mid-write can never leave a torn snapshot; gzip's own CRC plus the
format/version header reject corrupt or incompatible files on read.
"""

from __future__ import annotations

import gzip
import json
import zlib
from typing import Optional

from repro.persist import io as storage

from repro.design import Design
from repro.geometry import Rect
from repro.guard.checkpoint import state_signature
from repro.image import Blockage
from repro.library import Library, WireParasitics
from repro.netlist import Netlist
from repro.netlist.serialize import netlist_to_state, populate_netlist
from repro.timing import DelayMode, TimingConstraints
from repro.wirelength.wlm import WireLoadModel

SNAPSHOT_FORMAT = "repro-design-snapshot"
SNAPSHOT_VERSION = 1


class SnapshotError(Exception):
    """A snapshot file is corrupt, incompatible, or does not verify."""


# -- serialization ------------------------------------------------------


def _rect_state(rect: Rect) -> list:
    return [rect.xlo, rect.ylo, rect.xhi, rect.yhi]


def _constraints_state(c: TimingConstraints) -> dict:
    return {
        "cycle_time": c.cycle_time,
        "default_input_arrival": c.default_input_arrival,
        "default_output_required": c.default_output_required,
        "setup_time": c.setup_time,
        "hold_time": c.hold_time,
        "input_arrivals": dict(c.input_arrivals),
        "output_requireds": dict(c.output_requireds),
    }


def _constraints_from_state(state: dict) -> TimingConstraints:
    return TimingConstraints(**state)


def _wire_model_state(design: Design) -> dict:
    model = design.timing.wire_model
    if isinstance(model, WireLoadModel):
        return {"kind": "wlm", "base_cap": model.base_cap,
                "cap_per_fanout": model.cap_per_fanout}
    return {"kind": "steiner"}


def design_state(design: Design, extras: Optional[dict] = None) -> dict:
    """The full snapshot payload for a design (plain JSON data)."""
    parasitics = design.parasitics
    return {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "signature": state_signature(design),
        "design": {
            "die": _rect_state(design.die),
            "target_utilization": design.target_utilization,
            "blockages": [
                {"rect": _rect_state(b.rect), "name": b.name,
                 "wiring_factor": b.wiring_factor}
                for b in design.blockages
            ],
            "parasitics": {
                "cap_per_track": parasitics.cap_per_track,
                "res_per_track": parasitics.res_per_track,
                "rc_threshold": parasitics.rc_threshold,
            },
            "constraints": _constraints_state(design.constraints),
            "grid": [design.grid.nx, design.grid.ny],
            "steiner_bin_side": design.steiner.bin_side,
            "timing": {
                "mode": design.timing.mode.value,
                "default_gain": design.timing.default_gain,
                "wire_model": _wire_model_state(design),
            },
            "status": design.status,
            "rng_state": _encode_rng(design.rng.getstate()),
            "netlist": netlist_to_state(design.netlist),
        },
        "extras": extras or {},
    }


def _encode_rng(state: tuple) -> list:
    version, internal, gauss = state
    return [version, list(internal), gauss]


def _decode_rng(state: list) -> tuple:
    version, internal, gauss = state
    return (version, tuple(internal), gauss)


# -- file I/O -----------------------------------------------------------


def write_payload(path: str, payload: dict) -> str:
    """Atomically write an already-built snapshot payload.

    Split out of :func:`write_snapshot` so callers that need the
    payload anyway (the delta recorder diffs it against the chain
    base) serialize the design exactly once.  Returns the signature.
    """
    data = json.dumps(payload, separators=(",", ":")).encode()
    # mtime=0 keeps the gzip container deterministic: the same design
    # state always produces byte-identical snapshot files, which is
    # what lets fsck and the CI chaos smoke compare runs bit-for-bit
    blob = gzip.compress(data, mtime=0)
    storage.atomic_write_bytes(path, blob)
    return payload["signature"]


def write_snapshot(path: str, design: Design,
                   extras: Optional[dict] = None) -> str:
    """Atomically write a snapshot file; returns its signature."""
    return write_payload(path, design_state(design, extras))


def read_snapshot(path: str) -> dict:
    """Load and validate a snapshot payload (raises SnapshotError)."""
    try:
        with gzip.open(path, "rb") as stream:
            payload = json.loads(stream.read().decode())
    except (OSError, EOFError, ValueError, zlib.error) as exc:
        raise SnapshotError("unreadable snapshot %s: %s" % (path, exc))
    if not isinstance(payload, dict) \
            or payload.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError("%s is not a %s file" % (path, SNAPSHOT_FORMAT))
    if payload.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            "snapshot %s has format version %r; this build reads "
            "version %d" % (path, payload.get("version"),
                            SNAPSHOT_VERSION))
    if "signature" not in payload or "design" not in payload:
        raise SnapshotError("snapshot %s is missing required fields"
                            % path)
    return payload


# -- reload -------------------------------------------------------------


def _apply_scalars(design: Design, state: dict) -> None:
    """Grid/timing/rng scalars shared by both reload paths."""
    nx, ny = state["grid"]
    design.grid.resize(nx, ny)
    design.steiner.set_bin_side(state["steiner_bin_side"])
    timing = state["timing"]
    wire = timing["wire_model"]
    if wire["kind"] == "wlm":
        design.timing.set_wire_model(WireLoadModel(
            design.steiner, design.parasitics,
            base_cap=wire["base_cap"],
            cap_per_fanout=wire["cap_per_fanout"]))
    else:
        design.timing.set_wire_model(design.wire_model)
    design.timing.set_mode(DelayMode(timing["mode"]))
    design.timing.default_gain = timing["default_gain"]
    design.status = state["status"]
    design.rng.setstate(_decode_rng(state["rng_state"]))


def _verify(design: Design, payload: dict, where: str) -> None:
    actual = state_signature(design)
    if actual != payload["signature"]:
        raise SnapshotError(
            "%s: reloaded state signature %s does not match the "
            "snapshot's %s" % (where, actual[:12],
                               payload["signature"][:12]))


def rebuild_design(payload: dict, library: Library,
                   core: str = "object") -> Design:
    """A fresh ``Design`` from a snapshot payload, signature-verified.

    ``core`` selects the compute core of the rebuilt design; it is
    not part of the payload (snapshots are core-independent), so the
    caller passes the run's recorded choice.
    """
    state = payload["design"]
    try:
        netlist = Netlist(state["netlist"]["name"])
        populate_netlist(netlist, state["netlist"], library)
        constraints = _constraints_from_state(state["constraints"])
        die = Rect(*state["die"])
        blockages = [
            Blockage(Rect(*b["rect"]), name=b["name"],
                     wiring_factor=b["wiring_factor"])
            for b in state["blockages"]
        ]
        parasitics = WireParasitics(**state["parasitics"])
        design = Design(
            netlist, library, die, constraints, blockages=blockages,
            parasitics=parasitics,
            target_utilization=state["target_utilization"],
            mode=DelayMode(state["timing"]["mode"]), core=core)
        _apply_scalars(design, state)
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError("malformed snapshot payload: %s" % exc)
    _verify(design, payload, "rebuild")
    return design


def restore_design(design: Design, payload: dict) -> None:
    """Restore a live design *in place* to a snapshot's state.

    Every change flows through the ``Netlist`` mutation API, so the
    subscribed incremental analyzers track the teardown and rebuild;
    a final :meth:`~repro.timing.engine.TimingEngine.invalidate_all`
    then discards any derived caches so the next query re-times from
    the restored state.  Used by the substrate guard: when the
    partitioner or legalizer fails mid-operation, the in-memory diff
    checkpoint cannot be trusted, but the on-disk snapshot can.
    """
    state = payload["design"]
    netlist = design.netlist
    for net in netlist.nets():
        netlist.remove_net(net)
    for cell in netlist.cells():
        netlist.remove_cell(cell)
    try:
        populate_netlist(netlist, state["netlist"], design.library)
        constraints = _constraints_from_state(state["constraints"])
        design.constraints = constraints
        design.timing.constraints = constraints
        _apply_scalars(design, state)
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError("malformed snapshot payload: %s" % exc)
    design.timing.invalidate_all()
    _verify(design, payload, "restore")


def snapshot_signature(design: Design) -> str:
    """The signature a snapshot of ``design`` would carry right now."""
    return state_signature(design)
