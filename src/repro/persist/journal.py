"""The write-ahead run journal: one JSON line per flow event.

Every record is wrapped as ``{"r": <record>, "c": <crc32>}`` where the
checksum covers the canonical (sorted-key, no-whitespace) JSON encoding
of the record.  Appends are O(1): one line is written in append mode
and fsynced, so the journal stays on the hot path of the flow without
the quadratic rewrite cost of the original write-then-rename scheme.
A crash mid-append at worst leaves one torn final line, which the
recovery scan below drops.  Whole-file rewrites (create, tail
truncation, compaction) still go through a temp path and
``os.replace`` so a reader never sees a half-written file.

``Journal.open`` walks the file line by line; at the first torn or
corrupt line (bad JSON, bad checksum, missing final newline,
non-monotonic sequence) it truncates the journal to the last valid
record and keeps going — the recovery contract from ISSUE: *detect
torn/corrupt tails, truncate to the last valid entry*.

Multi-writer journals (the serve job store) additionally rely on
:meth:`Journal.refresh`: every writer appends under an exclusive file
lock and refreshes first, and the journal tracks the byte offset of
the end of valid data, so when a writer crashes mid-append the *next*
refresher repairs the torn tail in place — truncating the file back to
the last valid byte — before anyone appends past it.  Without that
repair, live writers would concatenate onto the newline-less torn line
and fork the sequence.

Long runs would otherwise replay (and re-parse) an unbounded tail of
transform records on every resume; :meth:`Journal.compact` bounds
that by dropping records older than a caller-chosen sequence number
(the current delta chain's base snapshot), renumbering the survivors
from zero behind a leading ``compacted`` record that remembers how
many records were folded away.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Iterable, List, Optional

from repro.persist import io as storage


class JournalError(Exception):
    """The journal file cannot be used at all (not just a torn tail)."""


def _canonical(record: dict) -> bytes:
    return json.dumps(record, sort_keys=True,
                      separators=(",", ":")).encode()


def _crc(record: dict) -> int:
    return zlib.crc32(_canonical(record)) & 0xFFFFFFFF


def encode_line(record: dict) -> str:
    """One CRC-wrapped journal line for ``record`` (no newline).

    Shared with ``repro.obs``'s trace stream: any append-only jsonl
    file in a run directory uses the same torn-tail-detectable format.
    """
    return json.dumps({"r": record, "c": _crc(record)},
                      separators=(",", ":"))


def decode_line(line: str) -> Optional[dict]:
    """The wrapped record, or ``None`` if the line is torn/corrupt."""
    try:
        wrapper = json.loads(line)
    except ValueError:
        return None
    if not isinstance(wrapper, dict) or "r" not in wrapper:
        return None
    record = wrapper.get("r")
    if not isinstance(record, dict) or wrapper.get("c") != _crc(record):
        return None
    return record


def _scan_lines(data: bytes, start_seq: int):
    """Parse journal bytes into ``(records, valid_bytes, bad_lines)``.

    ``valid_bytes`` is the offset just past the last fully valid,
    newline-terminated record (a record without its final newline is a
    torn append and does not count); ``bad_lines`` counts the lines at
    and after the first torn/corrupt/misnumbered one (0 = clean).
    Recovery and append agree on ``valid_bytes`` as the true end of
    the journal's data.
    """
    records: List[dict] = []
    valid = 0
    position = 0
    lines = data.splitlines(keepends=True)
    for index, raw in enumerate(lines):
        position += len(raw)
        if not raw.endswith(b"\n"):
            return records, valid, len(lines) - index
        text = raw.decode("utf-8", "replace").strip()
        if not text:
            valid = position
            continue
        record = decode_line(text)
        if record is None or record.get("seq") != start_seq + len(records):
            return records, valid, len(lines) - index
        records.append(record)
        valid = position
    return records, valid, 0


class Journal:
    """An append-only, checksummed, crash-safe record log."""

    def __init__(self, path: str, records: Optional[List[dict]] = None,
                 truncated: int = 0) -> None:
        self.path = path
        self.records: List[dict] = list(records or [])
        #: number of torn/corrupt tail lines dropped by :meth:`open`
        self.truncated_lines = truncated
        #: torn tail lines repaired in place by :meth:`refresh`
        self.repaired_lines = 0
        #: byte offset of the end of valid data — where the next
        #: append lands, and where recovery truncates back to
        self._valid_bytes = 0

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def create(cls, path: str) -> "Journal":
        """Start a fresh journal (overwrites any existing file)."""
        journal = cls(path)
        journal._rewrite()
        return journal

    @classmethod
    def open(cls, path: str) -> "Journal":
        """Load a journal, truncating any torn/corrupt tail.

        Raises :class:`JournalError` if the file does not exist.
        """
        try:
            with open(path, "rb") as stream:
                data = stream.read()
        except OSError as exc:
            raise JournalError("cannot open journal %s: %s" % (path, exc))
        # a crash between a rewrite's tmp write and its replace
        # strands ``journal.jsonl.tmp`` forever; attach is the safe
        # moment to drop it (nobody can be mid-publish on a journal
        # that is only now being opened)
        try:
            os.remove(path + ".tmp")
        except OSError:
            pass
        records, valid, dropped = _scan_lines(data, 0)
        journal = cls(path, records, truncated=dropped)
        if dropped:
            journal._rewrite()
        else:
            journal._valid_bytes = valid
        return journal

    def refresh(self) -> List[dict]:
        """Fold in records other processes appended since we last read.

        The multi-writer contract of the serve job journal: every
        writer holds an exclusive file lock while it appends, and
        calls ``refresh`` (under that same lock) first, so its next
        ``seq`` continues the on-disk sequence rather than its stale
        in-memory one.  The scan starts at this journal's end-of-valid
        byte offset; if it hits a torn/corrupt/misnumbered line — a
        writer crashed mid-append — the file is **repaired in place**,
        truncated back to the last valid byte *under the caller's
        exclusive lock*, before this writer (or any other refresher)
        can append past the tear and fork the sequence.  Returns the
        new records.
        """
        try:
            with open(self.path, "rb") as stream:
                stream.seek(self._valid_bytes)
                data = stream.read()
        except OSError as exc:
            raise JournalError("cannot refresh journal %s: %s"
                               % (self.path, exc))
        fresh, valid, torn = _scan_lines(data, len(self.records))
        self._valid_bytes += valid
        if torn:
            storage.truncate(self.path, self._valid_bytes)
            self.repaired_lines += torn
        self.records.extend(fresh)
        return fresh

    # -- writes --------------------------------------------------------

    def append(self, type_: str, **fields) -> dict:
        """Durably append one record; returns it (with its seq).

        O(1): a single line is appended and fsynced.  A crash inside
        the write leaves at most one torn line, which the next
        :meth:`open` truncates — or, for a multi-writer journal, the
        next writer's :meth:`refresh` repairs in place.  Multi-writer
        callers must hold the exclusive lock and have refreshed, so
        the file's end *is* this journal's end-of-valid offset.
        """
        record = {"seq": len(self.records), "type": type_}
        record.update(fields)
        line = encode_line(record) + "\n"
        # record joins memory only after the durable append: a failed
        # (or torn) write must not leave a phantom in-memory record
        # that the on-disk sequence never saw
        storage.append_text(self.path, line)
        self.records.append(record)
        self._valid_bytes += len(line.encode("utf-8"))
        return record

    def compact(self, keep_from_seq: int, **fields) -> Optional[dict]:
        """Drop records with ``seq < keep_from_seq``; renumber from 0.

        The survivors are written behind a leading ``compacted``
        record (seq 0) that carries any caller ``fields`` plus
        ``dropped`` — the cumulative count of records folded away
        over the journal's lifetime, so repeated compactions keep a
        truthful total.  Resume logic replays only what survives; the
        caller is responsible for choosing ``keep_from_seq`` at a
        self-contained point (the current delta chain's base
        snapshot).  Returns the new head record, or ``None`` when
        nothing would be dropped.
        """
        if keep_from_seq <= 0:
            return None
        kept = [r for r in self.records if r["seq"] >= keep_from_seq]
        dropped = len(self.records) - len(kept)
        if dropped <= 0:
            return None
        already = 0
        if self.records and self.records[0]["type"] == "compacted":
            already = self.records[0].get("dropped", 0)
            dropped -= 1  # the old head is replaced, not "dropped"
        head = {"seq": 0, "type": "compacted",
                "dropped": already + dropped}
        head.update(fields)
        renumbered = [head]
        for record in kept:
            fresh = dict(record)
            fresh["seq"] = len(renumbered)
            renumbered.append(fresh)
        self.records = renumbered
        self._rewrite()
        return head

    def _rewrite(self) -> None:
        text = "".join(encode_line(record) + "\n"
                       for record in self.records)
        storage.atomic_write_text(self.path, text)
        self._valid_bytes = len(text.encode("utf-8"))

    # -- queries -------------------------------------------------------

    def of_type(self, type_: str) -> List[dict]:
        """All records of one type, in journal order."""
        return [r for r in self.records if r["type"] == type_]

    def last_of_type(self, type_: str) -> Optional[dict]:
        """The most recent record of one type, or None."""
        for record in reversed(self.records):
            if record["type"] == type_:
                return record
        return None

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterable[dict]:
        return iter(self.records)

    def __repr__(self) -> str:
        return "<Journal %s: %d records>" % (self.path, len(self.records))
