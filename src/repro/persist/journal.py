"""The write-ahead run journal: one JSON line per flow event.

Every record is wrapped as ``{"r": <record>, "c": <crc32>}`` where the
checksum covers the canonical (sorted-key, no-whitespace) JSON encoding
of the record.  Appends rewrite the whole file to a temp path and
``os.replace`` it — atomic write-then-rename, so a reader never sees a
half-written journal and a crash mid-append leaves the previous file
intact.  Journals are small (hundreds of records), so the quadratic
rewrite cost is noise next to the transforms being journaled.

``Journal.open`` walks the file line by line; at the first torn or
corrupt line (bad JSON, bad checksum, non-monotonic sequence) it
truncates the journal to the last valid record and keeps going — the
recovery contract from ISSUE: *detect torn/corrupt tails, truncate to
the last valid entry*.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Iterable, List, Optional


class JournalError(Exception):
    """The journal file cannot be used at all (not just a torn tail)."""


def _canonical(record: dict) -> bytes:
    return json.dumps(record, sort_keys=True,
                      separators=(",", ":")).encode()


def _crc(record: dict) -> int:
    return zlib.crc32(_canonical(record)) & 0xFFFFFFFF


def _encode_line(record: dict) -> str:
    return json.dumps({"r": record, "c": _crc(record)},
                      separators=(",", ":"))


def _decode_line(line: str) -> Optional[dict]:
    """The wrapped record, or ``None`` if the line is torn/corrupt."""
    try:
        wrapper = json.loads(line)
    except ValueError:
        return None
    if not isinstance(wrapper, dict) or "r" not in wrapper:
        return None
    record = wrapper.get("r")
    if not isinstance(record, dict) or wrapper.get("c") != _crc(record):
        return None
    return record


class Journal:
    """An append-only, checksummed, crash-safe record log."""

    def __init__(self, path: str, records: Optional[List[dict]] = None,
                 truncated: int = 0) -> None:
        self.path = path
        self.records: List[dict] = list(records or [])
        #: number of torn/corrupt tail lines dropped by :meth:`open`
        self.truncated_lines = truncated

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def create(cls, path: str) -> "Journal":
        """Start a fresh journal (overwrites any existing file)."""
        journal = cls(path)
        journal._rewrite()
        return journal

    @classmethod
    def open(cls, path: str) -> "Journal":
        """Load a journal, truncating any torn/corrupt tail.

        Raises :class:`JournalError` if the file does not exist.
        """
        try:
            with open(path, "r") as stream:
                lines = stream.read().splitlines()
        except OSError as exc:
            raise JournalError("cannot open journal %s: %s" % (path, exc))
        records: List[dict] = []
        dropped = 0
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            record = _decode_line(line)
            if record is None or record.get("seq") != len(records):
                dropped = len(lines) - index
                break
            records.append(record)
        journal = cls(path, records, truncated=dropped)
        if dropped:
            journal._rewrite()
        return journal

    # -- writes --------------------------------------------------------

    def append(self, type_: str, **fields) -> dict:
        """Durably append one record; returns it (with its seq)."""
        record = {"seq": len(self.records), "type": type_}
        record.update(fields)
        self.records.append(record)
        self._rewrite()
        return record

    def _rewrite(self) -> None:
        tmp = self.path + ".tmp"
        with open(tmp, "w") as stream:
            for record in self.records:
                stream.write(_encode_line(record) + "\n")
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, self.path)

    # -- queries -------------------------------------------------------

    def of_type(self, type_: str) -> List[dict]:
        return [r for r in self.records if r["type"] == type_]

    def last_of_type(self, type_: str) -> Optional[dict]:
        for record in reversed(self.records):
            if record["type"] == type_:
                return record
        return None

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterable[dict]:
        return iter(self.records)

    def __repr__(self) -> str:
        return "<Journal %s: %d records>" % (self.path, len(self.records))
