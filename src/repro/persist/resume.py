"""Rebuilding an interrupted run from its directory alone.

Everything a fresh process needs to continue a durable run lives on
disk (see :mod:`repro.persist.rundir`); this module packages the
assembly sequence — open the directory, recover the journal, classify
it with :func:`~repro.persist.rundir.scan_resume`, resolve the latest
snapshot through its delta chain, rebuild the design, award crash
strikes to in-flight transforms, and seed a resumed
:class:`~repro.persist.rundir.FlowPersist` — into one call shared by
the CLI ``--resume`` path and the ``repro.serve`` worker pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.design import Design
from repro.persist.journal import Journal
from repro.persist.rundir import (
    FlowPersist,
    PersistConfig,
    RunDir,
    load_snapshot_payload,
    scan_resume,
)
from repro.persist.snapshot import SnapshotError, rebuild_design


@dataclass
class ResumedRun:
    """One interrupted run, rebuilt from disk and ready to continue.

    ``completed`` runs carry only ``rundir`` (and its stored report);
    everything else is populated for runs that still have work to do.
    The caller hands ``design``/``persist``/``resume_state`` to the
    scenario constructor exactly as the original process did.
    """

    rundir: RunDir
    completed: bool = False
    journal: Optional[Journal] = None
    design: Optional[Design] = None
    persist: Optional[FlowPersist] = None
    #: snapshot ``extras`` plus the persistent quarantine list
    resume_state: dict = field(default_factory=dict)
    #: transforms in flight when the previous process died
    in_flight: List[str] = field(default_factory=list)
    #: torn/corrupt journal tail lines dropped during recovery
    truncated_lines: int = 0

    @property
    def flow(self) -> Optional[str]:
        """The run's flow name ("TPS"/"SPR") from its metadata."""
        return self.rundir.meta.get("flow")

    @property
    def meta(self) -> dict:
        """The run's stored metadata (flow, config, spec...)."""
        return self.rundir.meta


def load_resume(path: str, library,
                die_at_status: Optional[int] = None,
                die_at_snapshot: Optional[int] = None,
                fence: Optional[Callable[[], None]] = None) -> ResumedRun:
    """Rebuild an interrupted run in ``path`` from disk alone.

    Raises :class:`~repro.persist.rundir.RunDirError`,
    :class:`~repro.persist.journal.JournalError`, or
    :class:`~repro.persist.snapshot.SnapshotError` when the directory
    is unusable; raises :class:`SnapshotError` when there is no
    snapshot to resume from (the run died before its init snapshot —
    the caller may start it over instead).

    ``die_at_status`` / ``die_at_snapshot`` arm fresh kill points for
    *this* process; they are never read from ``run.json``, so a
    resumed run does not re-die at the original kill point.

    ``fence`` (a callable raising
    :class:`~repro.persist.rundir.RunFencedError`) is installed as the
    resumed ``FlowPersist``'s durable-write guard — the serve worker
    passes its lease's fence so a superseded process aborts rather
    than writing into a run directory it no longer owns.
    """
    rundir = RunDir.open(path)
    journal = Journal.open(rundir.journal_path)
    state = scan_resume(journal)
    if state["completed"]:
        return ResumedRun(rundir=rundir, journal=journal,
                          completed=True,
                          truncated_lines=journal.truncated_lines)
    record = state["snapshot"]
    if record is None:
        raise SnapshotError("no snapshot to resume from in %s" % path)
    payload = load_snapshot_payload(rundir, record)
    core = rundir.meta.get("design", {}).get("core", "object")
    design = rebuild_design(payload, library, core=core)
    pconfig = PersistConfig.from_state(rundir.meta.get("persist", {}))
    pconfig.die_at_status = die_at_status
    pconfig.die_at_snapshot = die_at_snapshot
    quarantined = rundir.note_crashes(state["in_flight"],
                                      pconfig.crash_quarantine_after)
    persist = FlowPersist(rundir, journal, pconfig, design,
                          resumed=True, fence=fence)
    persist.seed_snapshot(record, record["status"], payload=payload)
    persist.note_resumed(record["seq"], record["status"],
                         state["in_flight"])
    resume_state = dict(payload.get("extras", {}))
    resume_state["quarantine"] = quarantined
    return ResumedRun(rundir=rundir, journal=journal, design=design,
                      persist=persist, resume_state=resume_state,
                      in_flight=state["in_flight"],
                      truncated_lines=journal.truncated_lines)
