"""Delta snapshots: only what changed since the previous snapshot.

A full design snapshot roots each chain; every later milestone stores
a *delta* — a structural diff of the full snapshot payload
(:func:`repro.persist.snapshot.design_state`) against the payload of
the snapshot written just before it, full or delta.  Chaining keeps
each delta proportional to what the last transform step dirtied: a
step that resized thirty gates costs thirty records even when an
earlier step in the same chain re-placed the whole design.  The diff
is computed payload-to-payload, so it covers exactly what a snapshot
covers: cells, nets, placements, scalars, and the scenario
``extras``, with nothing re-derived and nothing forgotten.  Each
delta document names its base file, so a chain resolves from the
files alone — read the chain back to its full root, apply forward.

The diff grammar is a small recursive algebra over JSON values.  Each
node describes how to turn the base value into the new value:

``{"$set": value}``
    replace the base value outright (scalars, reshaped lists);
``{"$dict": {"set": {key: node}, "drop": [key]}}``
    merge into a dict: recurse per surviving key, drop removed ones;
``{"$append": [items]}``
    the new list extends the base list (journal-style traces);
``{"$keyed": {"upsert": [partial records], "drop": [names],
  "order": [names]?}}``
    a name-keyed record list (netlist cells/nets): ``upsert`` carries
    only the changed fields of changed records (merged over the base
    record) and full records for new ones; ``drop`` removes by name.
    Record order is reconstructed as base-order-minus-dropped with new
    names appended; if the real order differs (a cell was removed and
    re-added, say), the explicit ``order`` list wins.  A partial
    record carrying ``"$full": true`` replaces instead of merges (a
    base record lost a field — cannot happen for netlist records, but
    the algebra does not assume that).

Unchanged subtrees are simply absent, which is the whole point: the
bytes written per milestone are proportional to what the transforms
dirtied, not to the design (the same incrementality argument the
paper makes for its analyzers, applied to persistence).

A delta document records the signature of its base and of the state
it reconstructs; :func:`apply_delta` verifies both — the latter via
:func:`repro.guard.checkpoint.payload_signature`, i.e. without
building a design — so a mismatched or corrupt chain fails loudly at
application time, never as silent state divergence.
"""

from __future__ import annotations

import gzip
import json
import zlib

from repro.guard.checkpoint import payload_signature
from repro.persist import io as storage
from repro.persist.snapshot import SNAPSHOT_FORMAT, SNAPSHOT_VERSION, SnapshotError

DELTA_FORMAT = "repro-design-delta"
DELTA_VERSION = 1

#: sentinel: base and new value are identical, emit nothing
_UNCHANGED = object()


# -- diff ---------------------------------------------------------------


def _is_keyed_list(value) -> bool:
    """True for lists of uniquely-named record dicts (cells, nets)."""
    if not isinstance(value, list) or not value:
        return False
    names = set()
    for item in value:
        if not isinstance(item, dict):
            return False
        name = item.get("name")
        if not isinstance(name, str) or name in names:
            return False
        names.add(name)
    return True


def _diff_record(base: dict, new: dict) -> dict:
    """Partial record: the name plus only the fields that changed."""
    if set(base) - set(new):
        # a field vanished: replace wholesale (merge cannot delete)
        partial = dict(new)
        partial["$full"] = True
        return partial
    partial = {"name": new["name"]}
    for key, value in new.items():
        if key != "name" and (key not in base or base[key] != value):
            partial[key] = value
    return partial


def _diff_keyed(base: list, new: list):
    base_map = {rec["name"]: rec for rec in base}
    new_names = {rec["name"] for rec in new}
    drop = [rec["name"] for rec in base if rec["name"] not in new_names]
    upsert = []
    for rec in new:
        old = base_map.get(rec["name"])
        if old is None:
            upsert.append(rec)
        elif old != rec:
            upsert.append(_diff_record(old, rec))
    node = {"upsert": upsert, "drop": drop}
    # order check: does the default reconstruction match reality?
    expected = [rec["name"] for rec in base if rec["name"] in new_names]
    expected += [rec["name"] for rec in new
                 if rec["name"] not in base_map]
    actual = [rec["name"] for rec in new]
    if expected != actual:
        node["order"] = actual
    if not upsert and not drop and "order" not in node:
        return _UNCHANGED
    return {"$keyed": node}


def _diff_dict(base: dict, new: dict):
    set_nodes = {}
    for key, value in new.items():
        if key in base:
            node = _diff_value(base[key], value)
            if node is not _UNCHANGED:
                set_nodes[key] = node
        else:
            set_nodes[key] = {"$set": value}
    drop = [key for key in base if key not in new]
    if not set_nodes and not drop:
        return _UNCHANGED
    return {"$dict": {"set": set_nodes, "drop": drop}}


def _diff_value(base, new):
    if base == new and type(base) is type(new):
        return _UNCHANGED
    if isinstance(base, dict) and isinstance(new, dict):
        return _diff_dict(base, new)
    if _is_keyed_list(base) and _is_keyed_list(new):
        return _diff_keyed(base, new)
    if (isinstance(base, list) and isinstance(new, list)
            and len(new) > len(base) and new[:len(base)] == base):
        return {"$append": new[len(base):]}
    return {"$set": new}


def make_delta(base_payload: dict, new_payload: dict,
               base_file: str = None) -> dict:
    """The delta document turning ``base_payload`` into ``new_payload``.

    Both arguments are full snapshot payloads (``design_state``
    output; the base may itself have been reconstructed from a
    delta).  The document is self-describing: it names the base it
    applies to (by signature, and by file when ``base_file`` is
    given — that link is what lets a chain of deltas resolve without
    the journal) and the signature of the state it reconstructs.
    """
    node = _diff_value(
        {"design": base_payload["design"],
         "extras": base_payload.get("extras", {})},
        {"design": new_payload["design"],
         "extras": new_payload.get("extras", {})})
    doc = {
        "format": DELTA_FORMAT,
        "version": DELTA_VERSION,
        "base_signature": base_payload["signature"],
        "signature": new_payload["signature"],
        "delta": None if node is _UNCHANGED else node,
    }
    if base_file is not None:
        doc["base"] = base_file
    return doc


# -- apply --------------------------------------------------------------


def _apply_keyed(base: list, node: dict) -> list:
    drop = set(node.get("drop", ()))
    merged = {rec["name"]: rec for rec in base if rec["name"] not in drop}
    order = [rec["name"] for rec in base if rec["name"] not in drop]
    for partial in node.get("upsert", ()):
        name = partial["name"]
        if name in merged and not partial.get("$full"):
            rec = dict(merged[name])
            rec.update(partial)
            merged[name] = rec
        else:
            merged[name] = partial
            if name not in set(order):
                order.append(name)
        full = dict(merged[name])
        full.pop("$full", None)
        merged[name] = full
    if "order" in node:
        order = node["order"]
    try:
        return [merged[name] for name in order]
    except KeyError as exc:
        raise SnapshotError("delta order references unknown record %s"
                            % exc)


def _apply_value(base, node):
    if not isinstance(node, dict):
        raise SnapshotError("malformed delta node %r" % (node,))
    if "$set" in node:
        return node["$set"]
    if "$append" in node:
        if not isinstance(base, list):
            raise SnapshotError("$append applied to non-list")
        return list(base) + list(node["$append"])
    if "$keyed" in node:
        if not isinstance(base, list):
            raise SnapshotError("$keyed applied to non-list")
        return _apply_keyed(base, node["$keyed"])
    if "$dict" in node:
        if not isinstance(base, dict):
            raise SnapshotError("$dict applied to non-dict")
        spec = node["$dict"]
        result = {key: value for key, value in base.items()
                  if key not in set(spec.get("drop", ()))}
        for key, sub in spec.get("set", {}).items():
            result[key] = (_apply_value(base[key], sub) if key in base
                           else _apply_value(None, sub))
        return result
    raise SnapshotError("unknown delta node keys %s" % sorted(node))


def apply_delta(base_payload: dict, delta_doc: dict) -> dict:
    """Reconstruct a full snapshot payload from base + delta.

    Verifies the chain both ways: the base must carry the signature
    the delta was computed against, and the reconstructed design
    state must hash (via :func:`payload_signature`) to the signature
    the delta promises.  Either mismatch raises
    :class:`~repro.persist.snapshot.SnapshotError`.
    """
    if delta_doc.get("format") != DELTA_FORMAT:
        raise SnapshotError("not a %s document" % DELTA_FORMAT)
    if delta_doc.get("version") != DELTA_VERSION:
        raise SnapshotError(
            "delta has format version %r; this build reads version %d"
            % (delta_doc.get("version"), DELTA_VERSION))
    if base_payload["signature"] != delta_doc["base_signature"]:
        raise SnapshotError(
            "delta applies to base %s but the base snapshot is %s"
            % (delta_doc["base_signature"][:12],
               base_payload["signature"][:12]))
    tree = {"design": base_payload["design"],
            "extras": base_payload.get("extras", {})}
    node = delta_doc.get("delta")
    if node is not None:
        tree = _apply_value(tree, node)
    payload = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "signature": delta_doc["signature"],
        "design": tree["design"],
        "extras": tree["extras"],
    }
    actual = payload_signature(payload["design"])
    if actual != delta_doc["signature"]:
        raise SnapshotError(
            "delta application produced state signature %s, expected %s"
            % (actual[:12], delta_doc["signature"][:12]))
    return payload


# -- file I/O -----------------------------------------------------------


def write_delta(path: str, delta_doc: dict) -> None:
    """Atomically write a delta document (same discipline as
    :func:`repro.persist.snapshot.write_snapshot`)."""
    data = json.dumps(delta_doc, separators=(",", ":")).encode()
    storage.atomic_write_bytes(path, gzip.compress(data, mtime=0))


def read_delta(path: str) -> dict:
    """Load and shape-check a delta document (raises SnapshotError)."""
    try:
        with gzip.open(path, "rb") as stream:
            doc = json.loads(stream.read().decode())
    except (OSError, EOFError, ValueError, zlib.error) as exc:
        raise SnapshotError("unreadable delta %s: %s" % (path, exc))
    if not isinstance(doc, dict) or doc.get("format") != DELTA_FORMAT:
        raise SnapshotError("%s is not a %s file" % (path, DELTA_FORMAT))
    for key in ("base_signature", "signature"):
        if key not in doc:
            raise SnapshotError("delta %s is missing %r" % (path, key))
    return doc
