"""``repro fsck``: scrub (and repair) durable state on disk.

The crash matrix proves the flow layer survives dead *processes*; this
module is the story for dishonest *storage*.  It walks a run directory
(or a whole fleet state dir) and verifies every durability invariant
the rest of ``repro.persist`` relies on:

* the journal's CRC chain — every line decodes, checksums, and is
  numbered monotonically; a torn or corrupt tail is reported (and with
  ``--repair`` truncated back to the last valid byte, exactly what
  :meth:`repro.persist.journal.Journal.open` would do);
* the compaction head — a ``compacted`` record is only legal at seq 0;
* every journaled snapshot — the file exists, decompresses (gzip's own
  CRC catches bit rot), carries the signature its journal record
  promises, and — for deltas — its base chain resolves all the way to
  a full root with both signature checks of
  :func:`repro.persist.delta.apply_delta` passing;
* fence files — parseable, integer token; in state-dir mode the token
  is cross-checked against the job's current lease token replayed from
  the jobs journal (lease *and* requeue/finish records — only a job
  the journal says is still RUNNING has a current token to be stale
  against);
* hygiene — orphaned ``*.tmp`` publish debris and snapshot files no
  journal record references.

``--repair`` is deliberately conservative: it never reconstructs data,
it only *removes the broken thing from the resume path*.  Torn tails
are truncated; corrupt or unresolvable milestones are **quarantined**
(the file is renamed ``*.quarantined`` and a ``snapshot_quarantined``
record is journaled, so :func:`repro.persist.rundir.scan_resume` falls
back to the newest milestone that still verifies); orphans and stale
debris are swept.  A repaired run resumes from an earlier — but
*verified* — milestone and, the flow being deterministic, reproduces
the same final report.

Everything is reported as a machine-readable document (format
``repro-fsck-report``) so CI and the serve front end can gate on it.
"""

from __future__ import annotations

import fcntl
import json
import os
import time
from typing import Dict, List, Optional, Set

from repro.persist import io as storage
from repro.persist.delta import apply_delta, read_delta
from repro.persist.journal import Journal, _scan_lines
from repro.persist.rundir import RUN_FORMAT
from repro.persist.snapshot import SnapshotError, read_snapshot

REPORT_FORMAT = "repro-fsck-report"
REPORT_VERSION = 1

#: suffix a quarantined milestone file is renamed to (bytes are kept
#: for forensics; the journal record is what takes it off the resume
#: path)
QUARANTINE_SUFFIX = ".quarantined"

#: seconds a lease is presumed live when its grant record carries no
#: TTL — mirrors ``repro.serve.lease.DEFAULT_LEASE_TTL`` (kept local:
#: persist must not import the serve layer)
DEFAULT_LEASE_TTL = 30.0

#: minimum age (seconds since mtime) before a *state-dir-level*
#: ``*.tmp`` file counts as orphaned debris.  Heartbeats and health
#: probes publish through short-lived tmp files at any moment and are
#: not serialized by the jobs lock, so a fresh tmp is far more likely
#: an in-flight atomic publish than a stranded one; sweeping it would
#: make the publisher's ``os.replace`` die ENOENT.
TMP_STALE_AGE = 60.0


def _finding(findings: List[dict], path: str, kind: str, detail: str,
             repair: Optional[str] = None) -> dict:
    entry = {"path": path, "kind": kind, "detail": detail,
             "repair": repair, "repaired": False}
    findings.append(entry)
    return entry


def _list_tmp(directory: str, min_age: float = 0.0,
              now: Optional[float] = None) -> List[str]:
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    picked = []
    for name in sorted(names):
        if not (name.endswith(".tmp") or ".tmp." in name):
            continue
        if min_age > 0.0:
            moment = time.time() if now is None else now
            try:
                age = moment - os.path.getmtime(
                    os.path.join(directory, name))
            except OSError:
                continue  # vanished: its publisher just renamed it
            if age < min_age:
                continue
        picked.append(name)
    return picked


def _check_tmp_debris(findings: List[dict], directory: str,
                      rel: str, repair: bool, min_age: float = 0.0,
                      now: Optional[float] = None) -> None:
    for name in _list_tmp(directory, min_age=min_age, now=now):
        entry = _finding(findings, os.path.join(rel, name),
                         "orphan-tmp",
                         "stranded temp file from an interrupted "
                         "atomic publish", repair="remove")
        if repair:
            try:
                os.remove(os.path.join(directory, name))
                entry["repaired"] = True
            except OSError as exc:
                entry["detail"] += " (remove failed: %s)" % exc


def _scan_journal_raw(path: str):
    """(records, valid_bytes, bad_lines) without mutating the file."""
    with open(path, "rb") as stream:
        data = stream.read()
    return _scan_lines(data, 0)


def _check_journal(findings: List[dict], path: str, rel: str,
                   repair: bool) -> Optional[List[dict]]:
    """Verify one CRC journal; returns its valid records (or None)."""
    try:
        records, valid, bad = _scan_journal_raw(path)
    except OSError as exc:
        _finding(findings, rel, "journal-unreadable", str(exc))
        return None
    if bad:
        entry = _finding(
            findings, rel, "journal-torn-tail",
            "%d torn/corrupt line(s) after byte %d" % (bad, valid),
            repair="truncate")
        if repair:
            try:
                storage.truncate(path, valid)
                entry["repaired"] = True
            except (OSError, storage.IoFatalError) as exc:
                entry["detail"] += " (truncate failed: %s)" % exc
    for record in records:
        if record["type"] == "compacted" and record["seq"] != 0:
            _finding(findings, rel, "compacted-head-misplaced",
                     "compacted record at seq %d (only seq 0 is "
                     "legal)" % record["seq"])
    return records


def _verify_snapshot_record(snap_dir: str,
                            record: dict) -> Optional[str]:
    """Why this journaled milestone cannot be loaded (None = fine).

    Walks a delta record's base chain by hand (rather than through
    :func:`~repro.persist.rundir.load_snapshot_payload`) so the
    verdict names the first broken link, then fully resolves the
    chain so every signature check runs.
    """
    filename = record["file"]
    chain = []
    seen = set()
    while filename.endswith(".delta.gz"):
        if filename in seen:
            return "delta chain cycles at %s" % filename
        seen.add(filename)
        full = os.path.join(snap_dir, filename)
        if not os.path.isfile(full):
            return "missing delta file %s" % filename
        try:
            doc = read_delta(full)
        except SnapshotError as exc:
            return "corrupt delta %s: %s" % (filename, exc)
        chain.append(doc)
        filename = doc.get("base")
        if not filename:
            return "delta %s names no base snapshot" % record["file"]
    full = os.path.join(snap_dir, filename)
    if not os.path.isfile(full):
        return "missing base snapshot %s" % filename
    try:
        payload = read_snapshot(full)
    except SnapshotError as exc:
        return "corrupt snapshot %s: %s" % (filename, exc)
    try:
        for doc in reversed(chain):
            payload = apply_delta(payload, doc)
    except SnapshotError as exc:
        return "delta chain does not apply: %s" % exc
    if payload["signature"] != record["signature"]:
        return ("signature %s does not match the journal's %s"
                % (payload["signature"][:12], record["signature"][:12]))
    return None


def _quarantine(entry: dict, snap_dir: str, journal: Optional[Journal],
                filename: str, reason: str) -> None:
    """Rename a broken milestone aside and journal the quarantine."""
    if journal is None:
        entry["detail"] += " (journal unusable: cannot quarantine)"
        return
    full = os.path.join(snap_dir, filename)
    try:
        if os.path.isfile(full):
            os.replace(full, full + QUARANTINE_SUFFIX)
        journal.append("snapshot_quarantined", file=filename,
                       reason=reason)
        entry["repaired"] = True
    except (OSError, storage.IoFatalError) as exc:
        entry["detail"] += " (quarantine failed: %s)" % exc


def _check_snapshots(findings: List[dict], run_path: str, rel: str,
                     records: List[dict], repair: bool) -> None:
    snap_dir = os.path.join(run_path, "snapshots")
    snap_records = [r for r in records if r["type"] == "snapshot"]
    quarantined = {r["file"] for r in records
                   if r["type"] == "snapshot_quarantined"}
    by_file = {r["file"]: r for r in snap_records}
    journal: Optional[Journal] = None
    journal_path = os.path.join(run_path, "journal.jsonl")

    def writer() -> Optional[Journal]:
        nonlocal journal
        if journal is None:
            try:
                journal = Journal.open(journal_path)
            except Exception:
                journal = None
        return journal

    newly_bad = set()
    for record in snap_records:
        filename = record["file"]
        if filename in quarantined:
            continue
        problem = _verify_snapshot_record(snap_dir, record)
        if problem is None:
            continue
        entry = _finding(findings,
                         os.path.join(rel, "snapshots", filename),
                         "snapshot-unloadable", problem,
                         repair="quarantine")
        newly_bad.add(filename)
        if repair:
            _quarantine(entry, snap_dir, writer(), filename, problem)

    referenced = set(by_file) | {name + QUARANTINE_SUFFIX
                                 for name in quarantined | newly_bad}
    # the compaction head remembers its chain base; files it names
    # are legitimately present even though their snapshot records
    # were folded away
    for record in records:
        if record["type"] == "compacted" and record.get("base_file"):
            referenced.add(record["base_file"])
    try:
        names = os.listdir(snap_dir)
    except OSError:
        return
    for name in sorted(names):
        if name in referenced or name.endswith(".tmp") \
                or ".tmp." in name or name.endswith(QUARANTINE_SUFFIX):
            continue
        entry = _finding(
            findings, os.path.join(rel, "snapshots", name),
            "snapshot-orphan",
            "snapshot file with no journal record (the record was "
            "lost with a torn tail, or a compaction sweep died)",
            repair="remove")
        if repair:
            try:
                os.remove(os.path.join(snap_dir, name))
                entry["repaired"] = True
            except OSError as exc:
                entry["detail"] += " (remove failed: %s)" % exc


def _check_fence(findings: List[dict], run_path: str, rel: str,
                 repair: bool,
                 expected_token: Optional[int] = None,
                 expected_worker: Optional[str] = None) -> None:
    path = os.path.join(run_path, "fence.json")
    if not os.path.exists(path):
        return
    token = None
    try:
        with open(path) as stream:
            doc = json.load(stream)
        token = doc["token"]
        if not isinstance(token, int) or isinstance(token, bool):
            raise TypeError("token %r is not an integer" % (token,))
    except (OSError, ValueError, KeyError, TypeError) as exc:
        entry = _finding(findings, os.path.join(rel, "fence.json"),
                         "fence-corrupt", str(exc), repair="remove")
        if repair:
            try:
                os.remove(path)
                entry["repaired"] = True
            except OSError as exc2:
                entry["detail"] += " (remove failed: %s)" % exc2
        return
    if expected_token is not None and token != expected_token:
        entry = _finding(
            findings, os.path.join(rel, "fence.json"), "fence-stale",
            "fence token %d but the jobs journal says the current "
            "lease token is %d" % (token, expected_token),
            repair="rewrite")
        if repair:
            try:
                storage.atomic_write_json(
                    path, {"token": int(expected_token),
                           "worker": expected_worker or "fsck-repair",
                           "at": doc.get("at", 0.0)})
                entry["repaired"] = True
            except (OSError, storage.IoFatalError) as exc:
                entry["detail"] += " (rewrite failed: %s)" % exc


def _check_json_file(findings: List[dict], path: str, rel: str) -> None:
    if not os.path.exists(path):
        return
    try:
        with open(path) as stream:
            json.load(stream)
    except (OSError, ValueError) as exc:
        _finding(findings, rel, "json-unreadable", str(exc))


def fsck_run_dir(path: str, repair: bool = False,
                 _rel: str = "", _fence_token: Optional[int] = None,
                 _fence_worker: Optional[str] = None) -> dict:
    """Scrub one run directory; returns a ``repro-fsck-report``."""
    findings: List[dict] = []
    rel = _rel
    run_json = os.path.join(path, "run.json")
    try:
        with open(run_json) as stream:
            payload = json.load(stream)
        if payload.get("format") != RUN_FORMAT:
            _finding(findings, os.path.join(rel, "run.json"),
                     "run-json-foreign",
                     "format %r is not %r"
                     % (payload.get("format"), RUN_FORMAT))
    except (OSError, ValueError) as exc:
        _finding(findings, os.path.join(rel, "run.json"),
                 "run-json-unreadable", str(exc))
    journal_path = os.path.join(path, "journal.jsonl")
    if os.path.exists(journal_path):
        records = _check_journal(findings, journal_path,
                                 os.path.join(rel, "journal.jsonl"),
                                 repair)
        if records is not None:
            _check_snapshots(findings, path, rel, records, repair)
    else:
        _finding(findings, os.path.join(rel, "journal.jsonl"),
                 "journal-missing", "run directory has no journal")
    _check_fence(findings, path, rel, repair,
                 expected_token=_fence_token,
                 expected_worker=_fence_worker)
    for name in ("quarantine.json", "report.json", "elapsed.json"):
        _check_json_file(findings, os.path.join(path, name),
                         os.path.join(rel, name))
    _check_tmp_debris(findings, path, rel, repair)
    _check_tmp_debris(findings, os.path.join(path, "snapshots"),
                      os.path.join(rel, "snapshots"), repair)
    return _report(path, "run", findings)


def _replay_jobs(records: List[dict]) -> Dict[str, dict]:
    """Minimal replay of the jobs journal: per-job lease currency.

    Mirrors ``repro.serve.jobs.JobStore._apply`` for exactly the
    fields the scrubber needs — current fencing token, holder, state,
    and lease timing.  Accounting for ``requeue`` and ``finish``
    records (not just the last ``lease``) matters twice over: a fence
    is only *stale* against a job the journal says is still RUNNING,
    and lease liveness must not be inferred from a claim that has
    since been released, expired, or completed.
    """
    jobs: Dict[str, dict] = {}
    for record in records:
        job_id = record.get("job_id")
        if not job_id:
            continue
        job = jobs.setdefault(job_id, {
            "state": "queued", "token": 0, "worker": None,
            "leased_at": 0.0, "ttl": DEFAULT_LEASE_TTL})
        kind = record["type"]
        if kind == "lease":
            job["state"] = "running"
            job["token"] = record.get("token", job["token"] + 1)
            job["worker"] = record.get("worker")
            job["leased_at"] = record.get("at", 0.0)
            job["ttl"] = record.get("ttl", DEFAULT_LEASE_TTL)
        elif kind == "requeue":
            job["state"] = "queued"
            job["worker"] = None
        elif kind == "finish":
            job["state"] = record.get("state", "done")
    return jobs


def _read_heartbeats(state_dir: str) -> Dict[str, dict]:
    """``workers/*.json`` documents by worker id — the same shape
    ``repro.serve.lease`` publishes, read here without importing the
    serve layer.  Unreadable or foreign files are simply skipped
    (the heartbeat check reports them separately)."""
    directory = os.path.join(state_dir, "workers")
    docs: Dict[str, dict] = {}
    try:
        names = os.listdir(directory)
    except OSError:
        return docs
    for name in names:
        if not name.endswith(".json"):
            continue
        try:
            with open(os.path.join(directory, name)) as stream:
                document = json.load(stream)
        except (OSError, ValueError):
            continue
        worker = document.get("worker")
        if isinstance(worker, str):
            docs[worker] = document
    return docs


def _lease_live(job_id: str, job: dict, beats: Dict[str, dict],
                now: float) -> bool:
    """The reaper's liveness rule (``JobStore.reap_expired``): a
    lease is live within TTL of its grant, or while its holder's
    heartbeat is fresh *and still lists the job*."""
    if job["state"] != "running":
        return False
    ttl = job["ttl"]
    if now - job["leased_at"] <= ttl:
        return True
    doc = beats.get(job["worker"] or "")
    if doc is None:
        return False
    at = doc.get("at")
    held = doc.get("jobs")
    return (isinstance(at, (int, float)) and now - float(at) <= ttl
            and isinstance(held, list) and job_id in held)


def fsck_state_dir(path: str, repair: bool = False,
                   now: Optional[float] = None) -> dict:
    """Scrub a fleet state dir: jobs journal, heartbeats, every run.

    The state dir is a **multi-host contract** — external ``repro
    agent`` workers may be appending journals and publishing files
    while this scrub runs — so the scrub is lease-aware rather than
    assuming exclusive ownership:

    * the fleet's ``jobs.lock`` is held for the whole scrub, so a
      half-written ``jobs.jsonl`` line really is a torn tail (writers
      serialize under the lock), and no new lease can be granted to a
      run directory mid-scrub;
    * a run directory whose job still holds a **live** lease (by the
      reaper's rule: grant younger than its TTL, or holder
      heartbeating fresh and listing the job) is skipped entirely —
      truncating, quarantining, or sweeping under a live writer would
      corrupt state the writer owns.  Skipped dirs are listed in the
      report's ``skipped_live_runs``; re-run after the lease expires
      (or the job finishes) to scrub them;
    * state-dir-level ``*.tmp`` files (heartbeat and probe publishes,
      which the jobs lock does not serialize) only count as debris
      once older than :data:`TMP_STALE_AGE` seconds.
    """
    moment = time.time() if now is None else now
    findings: List[dict] = []
    lock_stream = None
    try:
        lock_stream = open(os.path.join(path, "jobs.lock"), "a+")
        fcntl.flock(lock_stream, fcntl.LOCK_EX)
    except OSError:
        lock_stream = None  # read-only dir: scan without the lock
    try:
        jobs_path = os.path.join(path, "jobs.jsonl")
        jobs: Dict[str, dict] = {}
        if os.path.exists(jobs_path):
            records = _check_journal(findings, jobs_path, "jobs.jsonl",
                                     repair)
            if records is not None:
                jobs = _replay_jobs(records)
        else:
            _finding(findings, "jobs.jsonl", "journal-missing",
                     "state dir has no jobs journal")
        beats = _read_heartbeats(path)
        live: Set[str] = {job_id for job_id, job in jobs.items()
                          if _lease_live(job_id, job, beats, moment)}
        workers_dir = os.path.join(path, "workers")
        if os.path.isdir(workers_dir):
            for name in sorted(os.listdir(workers_dir)):
                if not name.endswith(".json"):
                    continue
                full = os.path.join(workers_dir, name)
                try:
                    with open(full) as stream:
                        json.load(stream)
                except (OSError, ValueError) as exc:
                    entry = _finding(findings,
                                     os.path.join("workers", name),
                                     "heartbeat-unreadable", str(exc),
                                     repair="remove")
                    if repair:
                        try:
                            os.remove(full)
                            entry["repaired"] = True
                        except OSError as exc2:
                            entry["detail"] += (" (remove failed: %s)"
                                                % exc2)
            _check_tmp_debris(findings, workers_dir, "workers", repair,
                              min_age=TMP_STALE_AGE, now=moment)
        runs_dir = os.path.join(path, "runs")
        run_reports = []
        skipped_live = []
        if os.path.isdir(runs_dir):
            for name in sorted(os.listdir(runs_dir)):
                run_path = os.path.join(runs_dir, name)
                if not os.path.isdir(run_path):
                    continue
                if name in live:
                    skipped_live.append(name)
                    continue
                job = jobs.get(name)
                running = job is not None and job["state"] == "running"
                sub = fsck_run_dir(
                    run_path, repair=repair,
                    _rel=os.path.join("runs", name),
                    _fence_token=(job["token"] if running else None),
                    _fence_worker=(job["worker"] if running else None))
                findings.extend(sub["findings"])
                run_reports.append(name)
        _check_tmp_debris(findings, path, "", repair,
                          min_age=TMP_STALE_AGE, now=moment)
    finally:
        if lock_stream is not None:
            try:
                fcntl.flock(lock_stream, fcntl.LOCK_UN)
            except OSError:
                pass
            lock_stream.close()
    report = _report(path, "state", findings)
    report["run_dirs"] = run_reports
    report["skipped_live_runs"] = skipped_live
    return report


def fsck_path(path: str, repair: bool = False) -> dict:
    """Scrub ``path``, auto-detecting run dir vs fleet state dir."""
    if os.path.isfile(os.path.join(path, "run.json")):
        return fsck_run_dir(path, repair=repair)
    if (os.path.isfile(os.path.join(path, "jobs.jsonl"))
            or os.path.isdir(os.path.join(path, "runs"))):
        return fsck_state_dir(path, repair=repair)
    findings: List[dict] = []
    _finding(findings, "", "not-repro-state",
             "%s holds neither a run.json nor a jobs journal" % path)
    return _report(path, "unknown", findings)


def _report(root: str, mode: str, findings: List[dict]) -> dict:
    repaired = sum(1 for f in findings if f["repaired"])
    return {
        "format": REPORT_FORMAT,
        "version": REPORT_VERSION,
        "root": os.path.abspath(root),
        "mode": mode,
        "findings": findings,
        "total_findings": len(findings),
        "repaired": repaired,
        "unrepaired": len(findings) - repaired,
        "clean": not findings,
    }
