"""Per-run directories and the ``FlowPersist`` driver.

A run directory is the durable identity of one flow invocation::

    RUNDIR/
      run.json          how to rebuild the run (flow, design recipe,
                        scenario/guard/chaos configuration)
      journal.jsonl     write-ahead event log (see repro.persist.journal)
      snapshots/        full design snapshots, one per milestone
      quarantine.json   crash strikes + persistently quarantined
                        transforms, carried across processes
      report.json       final FlowReport state (written on completion)

``FlowPersist`` is the object a scenario talks to: it journals
transform invocations (as the :class:`~repro.guard.runner.GuardedRunner`
recorder), writes milestone snapshots as cut status advances, restores
the design from the latest snapshot when the substrate fails, and
simulates a process kill at a chosen milestone for the resume tests.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.design import Design
from repro.guard.checkpoint import state_signature
from repro.persist.journal import Journal, JournalError
from repro.persist.snapshot import (
    SnapshotError,
    read_snapshot,
    restore_design,
    write_snapshot,
)

RUN_FORMAT = "repro-run"
RUN_VERSION = 1

#: exit code of a run killed by ``die_at_status`` (CI resume smoke)
DIE_EXIT_CODE = 17


@dataclass
class PersistConfig:
    """Knobs of the durable flow-state layer."""

    #: write a full snapshot whenever cut status crosses a multiple of
    #: this value (plus one at init and one before the postlude)
    snapshot_every: int = 10
    #: simulate a process kill (SystemExit) right after the first
    #: milestone snapshot at or past this status.  Never persisted to
    #: run.json: a resumed process must not re-die.
    die_at_status: Optional[int] = None
    #: quarantine a transform after this many cross-process crashes
    #: attributed to it (in-flight at process death)
    crash_quarantine_after: int = 1

    def to_state(self) -> dict:
        return {"snapshot_every": self.snapshot_every,
                "crash_quarantine_after": self.crash_quarantine_after}

    @classmethod
    def from_state(cls, state: dict) -> "PersistConfig":
        return cls(snapshot_every=state.get("snapshot_every", 10),
                   crash_quarantine_after=state.get(
                       "crash_quarantine_after", 1))


def _write_json(path: str, payload: dict) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(tmp, path)


class RunDirError(Exception):
    """The run directory is missing, incompatible, or unreadable."""


class RunDir:
    """Filesystem layout + metadata of one durable run."""

    def __init__(self, path: str, meta: dict) -> None:
        self.path = path
        #: the caller-supplied run recipe (flow, design, configs)
        self.meta = meta

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def create(cls, path: str, meta: dict) -> "RunDir":
        os.makedirs(path, exist_ok=True)
        os.makedirs(os.path.join(path, "snapshots"), exist_ok=True)
        rundir = cls(path, meta)
        _write_json(rundir.run_json_path,
                    {"format": RUN_FORMAT, "version": RUN_VERSION,
                     "meta": meta})
        return rundir

    @classmethod
    def open(cls, path: str) -> "RunDir":
        run_json = os.path.join(path, "run.json")
        try:
            with open(run_json, "r") as stream:
                payload = json.load(stream)
        except (OSError, ValueError) as exc:
            raise RunDirError("cannot read %s: %s" % (run_json, exc))
        if payload.get("format") != RUN_FORMAT:
            raise RunDirError("%s is not a %s directory"
                              % (path, RUN_FORMAT))
        if payload.get("version") != RUN_VERSION:
            raise RunDirError(
                "run dir %s has version %r; this build reads version %d"
                % (path, payload.get("version"), RUN_VERSION))
        return cls(path, payload.get("meta", {}))

    # -- paths ---------------------------------------------------------

    @property
    def run_json_path(self) -> str:
        return os.path.join(self.path, "run.json")

    @property
    def journal_path(self) -> str:
        return os.path.join(self.path, "journal.jsonl")

    @property
    def quarantine_path(self) -> str:
        return os.path.join(self.path, "quarantine.json")

    @property
    def report_path(self) -> str:
        return os.path.join(self.path, "report.json")

    def snapshot_path(self, name: str) -> str:
        return os.path.join(self.path, "snapshots", name + ".snap.gz")

    # -- quarantine persistence ----------------------------------------

    def load_quarantine(self) -> dict:
        try:
            with open(self.quarantine_path, "r") as stream:
                state = json.load(stream)
        except (OSError, ValueError):
            return {"strikes": {}, "quarantined": []}
        state.setdefault("strikes", {})
        state.setdefault("quarantined", [])
        return state

    def save_quarantine(self, state: dict) -> None:
        _write_json(self.quarantine_path, state)

    def note_crashes(self, names: List[str], threshold: int) -> List[str]:
        """Record crash strikes; returns the updated quarantine list."""
        state = self.load_quarantine()
        for name in names:
            strikes = state["strikes"].get(name, 0) + 1
            state["strikes"][name] = strikes
            if (strikes >= threshold
                    and name not in state["quarantined"]):
                state["quarantined"].append(name)
        if names:
            self.save_quarantine(state)
        return list(state["quarantined"])

    # -- final report --------------------------------------------------

    def write_report(self, state: dict) -> None:
        _write_json(self.report_path, state)

    def read_report(self) -> Optional[dict]:
        try:
            with open(self.report_path, "r") as stream:
                return json.load(stream)
        except (OSError, ValueError):
            return None


def scan_resume(journal: Journal) -> dict:
    """What a fresh process needs to know to continue a journal.

    Returns ``{"completed": bool, "snapshot": record-or-None,
    "in_flight": [transform names]}`` where *in_flight* are the
    transforms with a ``transform_start`` after the last snapshot and
    no matching ``transform_end`` — i.e. the ones running when the
    previous process died, which earn a crash strike.
    """
    completed = journal.last_of_type("run_end") is not None
    snapshot = journal.last_of_type("snapshot")
    horizon = snapshot["seq"] if snapshot else -1
    open_starts: Dict[tuple, dict] = {}
    for record in journal:
        if record["seq"] <= horizon:
            continue
        if record["type"] == "transform_start":
            open_starts[(record["name"], record["invocation"])] = record
        elif record["type"] == "transform_end":
            open_starts.pop((record["name"], record["invocation"]), None)
    in_flight = sorted({name for name, _ in open_starts})
    return {"completed": completed, "snapshot": snapshot,
            "in_flight": in_flight}


class FlowPersist:
    """The scenario-facing driver of the durable flow-state layer.

    Also implements the :class:`~repro.guard.runner.GuardedRunner`
    recorder protocol (``transform_start`` / ``transform_end`` /
    ``quarantined``), so every guarded invocation is journaled
    write-ahead: a start record with no end record marks the transform
    that was in flight when the process died.
    """

    def __init__(self, rundir: RunDir, journal: Journal,
                 config: PersistConfig, design: Design,
                 resumed: bool = False) -> None:
        self.rundir = rundir
        self.journal = journal
        self.config = config
        self.design = design
        self.resumed = resumed
        #: signature/status of the most recent on-disk snapshot
        self._last_signature: Optional[str] = None
        self._last_status: Optional[int] = None
        self._died = False

    # -- journal bookkeeping -------------------------------------------

    def start(self, flow: str, seed: int) -> None:
        self.journal.append("run_start", flow=flow, seed=seed)

    def note_resumed(self, snapshot_seq: int, status: int,
                     in_flight: List[str]) -> None:
        self.journal.append("resumed", snapshot=snapshot_seq,
                            status=status, in_flight=in_flight)

    def phase(self, status: int, **metrics) -> None:
        self.journal.append("phase", status=status, **metrics)

    # -- GuardedRunner recorder protocol -------------------------------

    def transform_start(self, name: str, invocation: int) -> None:
        self.journal.append("transform_start", name=name,
                            invocation=invocation,
                            status=self.design.status)

    def transform_end(self, name: str, invocation: int, ok: bool,
                      kind: Optional[str] = None) -> None:
        fields = {"name": name, "invocation": invocation, "ok": ok}
        if kind is not None:
            fields["kind"] = kind
        self.journal.append("transform_end", **fields)

    def quarantined(self, name: str) -> None:
        self.journal.append("quarantine", name=name)
        state = self.rundir.load_quarantine()
        if name not in state["quarantined"]:
            state["quarantined"].append(name)
            self.rundir.save_quarantine(state)

    # -- snapshots -----------------------------------------------------

    def snapshot(self, tag: str, extras: Optional[dict] = None) -> str:
        """Write a full design snapshot now; returns its signature.

        Always applies the *staleness barrier* first: virtual resizes
        leave timing's electrical caches deliberately stale, which a
        rebuilt process cannot reproduce — so every snapshot point
        re-times from current state, in this process and equally in
        the one that will resume from the file.
        """
        self.design.timing.invalidate_all()
        name = "%04d-%s" % (len(self.journal), tag)
        path = self.rundir.snapshot_path(name)
        signature = write_snapshot(path, self.design, extras)
        self._last_signature = signature
        self._last_status = self.design.status
        self.journal.append("snapshot", tag=tag,
                            file=os.path.basename(path),
                            status=self.design.status,
                            signature=signature)
        return signature

    def milestone(self, extras_fn: Callable[[], dict],
                  force: bool = False, tag: Optional[str] = None) -> bool:
        """Snapshot if cut status crossed a milestone; maybe die after.

        Returns True if a snapshot was written.
        """
        status = self.design.status
        every = max(1, self.config.snapshot_every)
        due = force or self._last_status is None \
            or status // every > self._last_status // every
        if not due:
            return False
        self.snapshot(tag or ("status-%03d" % status), extras_fn())
        self._maybe_die(status)
        return True

    def seed_snapshot(self, snapshot_record: dict, status: int) -> None:
        """Adopt an existing on-disk snapshot as current (resume path)."""
        self._last_signature = snapshot_record["signature"]
        self._last_status = status

    def _maybe_die(self, status: int) -> None:
        target = self.config.die_at_status
        if target is None or self._died or status < target:
            return
        self._died = True
        raise SystemExit(DIE_EXIT_CODE)

    # -- substrate restore ---------------------------------------------

    def ensure_current(self, extras_fn: Callable[[], dict],
                       tag: str) -> None:
        """Guarantee the latest snapshot matches the live design.

        Called before an unrollbackable substrate operation: if the
        design drifted since the last snapshot, write a fresh one so a
        failure can restore to *this* state rather than an older one.
        """
        if (self._last_signature is not None
                and state_signature(self.design) == self._last_signature):
            return
        self.snapshot(tag, extras_fn())

    def latest_snapshot(self) -> dict:
        """The payload of the most recent snapshot on disk."""
        record = self.journal.last_of_type("snapshot")
        if record is None:
            raise SnapshotError("no snapshot in journal %s"
                                % self.journal.path)
        payload = read_snapshot(self.rundir.snapshot_path(
            record["file"][:-len(".snap.gz")]))
        if payload["signature"] != record["signature"]:
            raise SnapshotError(
                "snapshot %s does not match its journal record"
                % record["file"])
        return payload

    def restore_latest(self) -> dict:
        """Restore the design in place from the latest snapshot.

        Returns the payload so the caller can re-apply its ``extras``
        (scenario/transform state captured alongside the design).
        """
        payload = self.latest_snapshot()
        restore_design(self.design, payload)
        self.journal.append("restore", signature=payload["signature"],
                            status=self.design.status)
        return payload

    # -- completion ----------------------------------------------------

    def finish(self, report_state: dict) -> None:
        self.journal.append("run_end",
                            signature=state_signature(self.design),
                            status=self.design.status)
        report_state = dict(report_state)
        report_state["state_signature"] = state_signature(self.design)
        self.rundir.write_report(report_state)
