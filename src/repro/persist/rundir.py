"""Per-run directories and the ``FlowPersist`` driver.

A run directory is the durable identity of one flow invocation::

    RUNDIR/
      run.json          how to rebuild the run (flow, design recipe,
                        scenario/guard/chaos configuration)
      journal.jsonl     write-ahead event log (see repro.persist.journal)
      snapshots/        design snapshots, one per milestone: full
                        ``*.snap.gz`` files and, in delta mode,
                        ``*.delta.gz`` diffs chained off the previous
                        snapshot (see repro.persist.delta)
      quarantine.json   crash strikes + persistently quarantined
                        transforms, carried across processes
      report.json       final FlowReport state (written on completion)

``FlowPersist`` is the object a scenario talks to: it journals
transform invocations (as the :class:`~repro.guard.runner.GuardedRunner`
recorder), writes milestone snapshots as cut status advances, restores
the design from the latest snapshot when the substrate fails, and
simulates a process kill at a chosen milestone for the resume tests.

In ``snapshot_mode="delta"`` each milestone stores only what changed
since the *previous* snapshot, and restore applies the chain forward
from its full root; a new full snapshot roots a fresh chain every
``full_every`` deltas — bounding how many files a resume must read —
and whenever a delta would not actually be smaller.  With
``compact_every`` set, the journal is compacted once enough records
predate the chain root — those records (and the snapshot files only
they reference) are no longer needed to resume, so long runs stop
replaying unbounded tails.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.design import Design
from repro.guard.checkpoint import state_signature
from repro.persist import io as storage
from repro.persist.delta import apply_delta, make_delta, read_delta, write_delta
from repro.persist.journal import Journal, JournalError
from repro.persist.snapshot import (
    SnapshotError,
    design_state,
    read_snapshot,
    restore_design,
    write_payload,
)

RUN_FORMAT = "repro-run"
RUN_VERSION = 1

#: exit code of a run killed by ``die_at_status`` (CI resume smoke)
DIE_EXIT_CODE = 17


@dataclass
class PersistConfig:
    """Knobs of the durable flow-state layer."""

    #: write a snapshot whenever cut status crosses a multiple of
    #: this value (plus one at init and one before the postlude)
    snapshot_every: int = 10
    #: ``"full"`` writes every milestone as a complete snapshot;
    #: ``"delta"`` writes a diff against the chain's base full
    #: snapshot (the first milestone of a chain is always full)
    snapshot_mode: str = "full"
    #: in delta mode, start a fresh chain (new full snapshot) after
    #: this many deltas; 0 keeps one chain for the whole run
    full_every: int = 8
    #: compact the journal once this many records predate the chain
    #: base snapshot (0 disables compaction)
    compact_every: int = 0
    #: simulate a process kill (SystemExit) right after the first
    #: milestone snapshot at or past this status.  Never persisted to
    #: run.json: a resumed process must not re-die.
    die_at_status: Optional[int] = None
    #: simulate a process kill right after the N-th milestone snapshot
    #: of this process (1-based).  Counts only :meth:`milestone`
    #: snapshots — pre-substrate ``ensure_current`` snapshots are not
    #: safe resume points (the postlude transforms around them are not
    #: idempotent).  Never persisted, like ``die_at_status``.
    die_at_snapshot: Optional[int] = None
    #: quarantine a transform after this many cross-process crashes
    #: attributed to it (in-flight at process death)
    crash_quarantine_after: int = 1

    def to_state(self) -> dict:
        """The config as a plain-JSON dict (journal metadata)."""
        return {"snapshot_every": self.snapshot_every,
                "snapshot_mode": self.snapshot_mode,
                "full_every": self.full_every,
                "compact_every": self.compact_every,
                "crash_quarantine_after": self.crash_quarantine_after}

    @classmethod
    def from_state(cls, state: dict) -> "PersistConfig":
        """Rebuild a config from :meth:`to_state` output; missing
        keys take their defaults."""
        return cls(snapshot_every=state.get("snapshot_every", 10),
                   snapshot_mode=state.get("snapshot_mode", "full"),
                   full_every=state.get("full_every", 8),
                   compact_every=state.get("compact_every", 0),
                   crash_quarantine_after=state.get(
                       "crash_quarantine_after", 1))


def _write_json(path: str, payload: dict) -> None:
    storage.atomic_write_json(path, payload, indent=2)


class RunDirError(Exception):
    """The run directory is missing, incompatible, or unreadable."""


class RunFencedError(Exception):
    """This process no longer owns the run directory.

    Raised by a ``FlowPersist`` fence guard (see
    ``repro.serve.lease.fence_guard``) when the run has been re-leased
    to another worker under a newer fencing token: every further
    durable write from this process would race the new holder's
    resume, so the flow must abort immediately.
    """


class RunDir:
    """Filesystem layout + metadata of one durable run."""

    def __init__(self, path: str, meta: dict) -> None:
        self.path = path
        #: the caller-supplied run recipe (flow, design, configs)
        self.meta = meta

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def create(cls, path: str, meta: dict) -> "RunDir":
        """Create a new run directory and write its ``run.json``."""
        os.makedirs(path, exist_ok=True)
        os.makedirs(os.path.join(path, "snapshots"), exist_ok=True)
        rundir = cls(path, meta)
        rundir.sweep_tmp()
        _write_json(rundir.run_json_path,
                    {"format": RUN_FORMAT, "version": RUN_VERSION,
                     "meta": meta})
        return rundir

    @classmethod
    def open(cls, path: str) -> "RunDir":
        """Open an existing run directory, validating format and
        version; raises :class:`RunDirError` if unusable."""
        run_json = os.path.join(path, "run.json")
        try:
            with open(run_json, "r") as stream:
                payload = json.load(stream)
        except (OSError, ValueError) as exc:
            raise RunDirError("cannot read %s: %s" % (run_json, exc))
        if payload.get("format") != RUN_FORMAT:
            raise RunDirError("%s is not a %s directory"
                              % (path, RUN_FORMAT))
        if payload.get("version") != RUN_VERSION:
            raise RunDirError(
                "run dir %s has version %r; this build reads version %d"
                % (path, payload.get("version"), RUN_VERSION))
        rundir = cls(path, payload.get("meta", {}))
        rundir.sweep_tmp()
        return rundir

    def sweep_tmp(self) -> int:
        """Drop stranded ``*.tmp`` publish debris (root + snapshots).

        A crash between a tmp write and its ``os.replace`` leaves the
        temp file forever; open/create is the safe moment to sweep —
        single-writer attach semantics mean nobody can be mid-publish
        in a directory that is only now being (re)opened.
        """
        removed = storage.sweep_tmp(self.path)
        removed += storage.sweep_tmp(os.path.join(self.path,
                                                  "snapshots"))
        return removed

    # -- paths ---------------------------------------------------------

    @property
    def run_json_path(self) -> str:
        """Run metadata: format tag, version, meta dict."""
        return os.path.join(self.path, "run.json")

    @property
    def journal_path(self) -> str:
        """The run's write-ahead event journal."""
        return os.path.join(self.path, "journal.jsonl")

    @property
    def quarantine_path(self) -> str:
        """Cross-process crash strikes and quarantined transforms."""
        return os.path.join(self.path, "quarantine.json")

    @property
    def report_path(self) -> str:
        """The final FlowReport state (written at ``run_end``)."""
        return os.path.join(self.path, "report.json")

    @property
    def trace_path(self) -> str:
        """The ``repro.obs`` span stream of this run."""
        return os.path.join(self.path, "trace.jsonl")

    @property
    def elapsed_path(self) -> str:
        """Cumulative wall-clock seconds across all attempts."""
        return os.path.join(self.path, "elapsed.json")

    # -- cumulative wall clock -----------------------------------------

    def save_elapsed(self, seconds: float) -> None:
        """Persist the run's cumulative wall-clock seconds so a
        resumed process reports whole-run ``cpu_seconds``, not just
        its own segment."""
        _write_json(self.elapsed_path, {"seconds": seconds})

    def load_elapsed(self) -> float:
        """Prior attempts' wall-clock seconds (0.0 if none)."""
        try:
            with open(self.elapsed_path, "r") as stream:
                return float(json.load(stream)["seconds"])
        except (OSError, ValueError, KeyError, TypeError):
            return 0.0

    def snapshot_path(self, name: str) -> str:
        """Path of a *full* snapshot by bare name (PR 2 convention)."""
        return os.path.join(self.path, "snapshots", name + ".snap.gz")

    def snapshot_file(self, filename: str) -> str:
        """Path of a snapshot or delta file by its journaled filename
        (extension included — ``.snap.gz`` or ``.delta.gz``)."""
        return os.path.join(self.path, "snapshots", filename)

    # -- quarantine persistence ----------------------------------------

    def load_quarantine(self) -> dict:
        """The quarantine state; a missing file reads as empty."""
        try:
            with open(self.quarantine_path, "r") as stream:
                state = json.load(stream)
        except (OSError, ValueError):
            return {"strikes": {}, "quarantined": []}
        state.setdefault("strikes", {})
        state.setdefault("quarantined", [])
        return state

    def save_quarantine(self, state: dict) -> None:
        """Atomically rewrite the quarantine state."""
        _write_json(self.quarantine_path, state)

    def note_crashes(self, names: List[str], threshold: int) -> List[str]:
        """Record crash strikes; returns the updated quarantine list."""
        state = self.load_quarantine()
        for name in names:
            strikes = state["strikes"].get(name, 0) + 1
            state["strikes"][name] = strikes
            if (strikes >= threshold
                    and name not in state["quarantined"]):
                state["quarantined"].append(name)
        if names:
            self.save_quarantine(state)
        return list(state["quarantined"])

    # -- final report --------------------------------------------------

    def write_report(self, state: dict) -> None:
        """Atomically write the final report JSON."""
        _write_json(self.report_path, state)

    def read_report(self) -> Optional[dict]:
        """The stored report, or None if the run never finished."""
        try:
            with open(self.report_path, "r") as stream:
                return json.load(stream)
        except (OSError, ValueError):
            return None


def scan_resume(journal: Journal) -> dict:
    """What a fresh process needs to know to continue a journal.

    Returns ``{"completed": bool, "snapshot": record-or-None,
    "in_flight": [transform names]}`` where *in_flight* are the
    transforms with a ``transform_start`` after the last snapshot and
    no matching ``transform_end`` — i.e. the ones running when the
    previous process died, which earn a crash strike.

    Snapshots named by a ``snapshot_quarantined`` record (written by
    ``repro fsck --repair`` when a milestone file is corrupt) are
    skipped: resume falls back to the newest snapshot that still
    verifies.
    """
    completed = journal.last_of_type("run_end") is not None
    quarantined = {r["file"]
                   for r in journal.of_type("snapshot_quarantined")}
    snapshot = None
    for record in reversed(journal.records):
        if (record["type"] == "snapshot"
                and record["file"] not in quarantined):
            snapshot = record
            break
    horizon = snapshot["seq"] if snapshot else -1
    open_starts: Dict[tuple, dict] = {}
    for record in journal:
        if record["seq"] <= horizon:
            continue
        if record["type"] == "transform_start":
            open_starts[(record["name"], record["invocation"])] = record
        elif record["type"] == "transform_end":
            open_starts.pop((record["name"], record["invocation"]), None)
    in_flight = sorted({name for name, _ in open_starts})
    return {"completed": completed, "snapshot": snapshot,
            "in_flight": in_flight}


def load_snapshot_payload(rundir: RunDir, record: dict) -> dict:
    """The full payload behind a journal ``snapshot`` record.

    A delta record is resolved through its chain: each delta document
    names its base file, so the chain is walked back to its full-
    snapshot root and the deltas applied forward — every link
    verified by the base-signature and result-signature checks of
    :func:`repro.persist.delta.apply_delta`.  The returned payload is
    exactly what a full snapshot at that milestone would have carried.
    """
    filename = record["file"]
    docs = []
    seen = set()
    while filename.endswith(".delta.gz"):
        if filename in seen:
            raise SnapshotError("delta chain cycles at %s" % filename)
        seen.add(filename)
        doc = read_delta(rundir.snapshot_file(filename))
        docs.append(doc)
        filename = doc.get("base")
        if not filename:
            raise SnapshotError(
                "delta %s names no base snapshot" % record["file"])
    payload = read_snapshot(rundir.snapshot_file(filename))
    for doc in reversed(docs):
        payload = apply_delta(payload, doc)
    if payload["signature"] != record["signature"]:
        raise SnapshotError(
            "snapshot %s does not match its journal record"
            % record["file"])
    return payload


def _file_ordinal(filename: str) -> int:
    """The leading ``%04d`` ordinal of a snapshot filename, or -1."""
    try:
        return int(filename.split("-", 1)[0])
    except (ValueError, IndexError):
        return -1


class FlowPersist:
    """The scenario-facing driver of the durable flow-state layer.

    Also implements the :class:`~repro.guard.runner.GuardedRunner`
    recorder protocol (``transform_start`` / ``transform_end`` /
    ``quarantined``), so every guarded invocation is journaled
    write-ahead: a start record with no end record marks the transform
    that was in flight when the process died.
    """

    def __init__(self, rundir: RunDir, journal: Journal,
                 config: PersistConfig, design: Design,
                 resumed: bool = False,
                 fence: Optional[Callable[[], None]] = None) -> None:
        self.rundir = rundir
        self.journal = journal
        self.config = config
        self.design = design
        self.resumed = resumed
        #: durable-write guard: called before every journal append
        #: and snapshot; raises :class:`RunFencedError` when this
        #: process lost the run to a newer lease (None = unfenced)
        self.fence = fence
        #: signature/status of the most recent on-disk snapshot
        self._last_signature: Optional[str] = None
        self._last_status: Optional[int] = None
        #: canonical JSON of the last written payload (dedupe check)
        self._last_canon: Optional[str] = None
        #: the previous snapshot (the next delta's base): in-memory
        #: payload + filename, and the current chain's delta depth
        self._base_payload: Optional[dict] = None
        self._base_file: Optional[str] = None
        self._chain_len = 0
        #: monotonic snapshot-file ordinal — survives compaction, so
        #: filenames never collide after the journal is renumbered
        self._ordinal = 0
        self._milestones = 0
        self._died = False
        #: cumulative wall clock: segments of dead processes (from
        #: elapsed.json) plus this process's own running time
        self._wall_t0 = time.perf_counter()
        self.prior_seconds = rundir.load_elapsed() if resumed else 0.0
        #: persistence-cost accounting (the persist benchmark reads
        #: this; ``snapshot_seconds`` covers serialize+diff+write)
        self.stats = {"full_snapshots": 0, "delta_snapshots": 0,
                      "full_bytes": 0, "delta_bytes": 0,
                      "deduped": 0, "compactions": 0,
                      "snapshot_seconds": 0.0}

    # -- journal bookkeeping -------------------------------------------

    def _check_fence(self) -> None:
        """Abort (RunFencedError) if this process lost the run."""
        if self.fence is not None:
            self.fence()

    def start(self, flow: str, seed: int) -> None:
        """Journal the start of a fresh run."""
        self._check_fence()
        self.journal.append("run_start", flow=flow, seed=seed)

    def note_resumed(self, snapshot_seq: int, status: int,
                     in_flight: List[str]) -> None:
        """Journal that this process resumed from a snapshot."""
        self._check_fence()
        self.journal.append("resumed", snapshot=snapshot_seq,
                            status=status, in_flight=in_flight)

    def phase(self, status: int, **metrics) -> None:
        """Journal a cut-status milestone and its metrics."""
        self._check_fence()
        self.journal.append("phase", status=status, **metrics)

    # -- GuardedRunner recorder protocol -------------------------------

    def transform_start(self, name: str, invocation: int) -> None:
        """Journal a transform entering execution (write-ahead)."""
        self._check_fence()
        self.journal.append("transform_start", name=name,
                            invocation=invocation,
                            status=self.design.status)

    def transform_end(self, name: str, invocation: int, ok: bool,
                      kind: Optional[str] = None) -> None:
        """Journal a transform's completion (or guarded failure)."""
        self._check_fence()
        fields = {"name": name, "invocation": invocation, "ok": ok}
        if kind is not None:
            fields["kind"] = kind
        self.journal.append("transform_end", **fields)

    def quarantined(self, name: str) -> None:
        """Journal a quarantine and persist it for later attempts."""
        self._check_fence()
        self.journal.append("quarantine", name=name)
        state = self.rundir.load_quarantine()
        if name not in state["quarantined"]:
            state["quarantined"].append(name)
            self.rundir.save_quarantine(state)

    # -- snapshots -----------------------------------------------------

    def snapshot(self, tag: str, extras: Optional[dict] = None,
                 dedupe: bool = False, milestone: bool = False) -> str:
        """Write a design snapshot now; returns its signature.

        Always applies the *staleness barrier* first: virtual resizes
        leave timing's electrical caches deliberately stale, which a
        rebuilt process cannot reproduce — so every snapshot point
        re-times from current state, in this process and equally in
        the one that will resume from the file.

        In delta mode the snapshot is a diff against the *previous*
        snapshot's payload unless there is none yet, ``full_every``
        deltas have chained up (bounding resume read depth), or the
        diff would not actually be smaller — in those cases a full
        snapshot roots a new chain.  With ``dedupe=True`` an
        exactly-identical payload (same design state *including* RNG
        and name counter, same extras) writes nothing: the previous
        snapshot file already is this state.
        """
        self._check_fence()
        started = time.perf_counter()
        self.design.timing.invalidate_all()
        payload = design_state(self.design, extras)
        canon = json.dumps(payload, sort_keys=True,
                           separators=(",", ":"))
        if dedupe and canon == self._last_canon:
            self.stats["deduped"] += 1
            self.stats["snapshot_seconds"] += \
                time.perf_counter() - started
            return payload["signature"]
        doc = None
        if (self.config.snapshot_mode == "delta"
                and self._base_payload is not None
                and not (self.config.full_every > 0
                         and self._chain_len >= self.config.full_every)):
            doc = make_delta(self._base_payload, payload,
                             base_file=self._base_file)
            delta_len = len(json.dumps(doc, separators=(",", ":")))
            if delta_len >= len(canon):
                doc = None  # a full snapshot is no bigger; chain anew
        name = "%04d-%s" % (self._ordinal, tag)
        fields = {"tag": tag, "status": self.design.status,
                  "signature": payload["signature"],
                  "ordinal": self._ordinal}
        if doc is not None:
            filename = name + ".delta.gz"
            write_delta(self.rundir.snapshot_file(filename), doc)
            fields.update(file=filename, kind="delta",
                          base=self._base_file)
            self._base_payload = payload
            self._base_file = filename
            self._chain_len += 1
            self.stats["delta_snapshots"] += 1
            self.stats["delta_bytes"] += os.path.getsize(
                self.rundir.snapshot_file(filename))
        else:
            filename = name + ".snap.gz"
            write_payload(self.rundir.snapshot_file(filename), payload)
            fields.update(file=filename, kind="full")
            self._base_payload = payload
            self._base_file = filename
            self._chain_len = 0
            self.stats["full_snapshots"] += 1
            self.stats["full_bytes"] += os.path.getsize(
                self.rundir.snapshot_file(filename))
        if milestone:
            fields["milestone"] = True
        self._ordinal += 1
        self._last_signature = payload["signature"]
        self._last_status = self.design.status
        self._last_canon = canon
        self.journal.append("snapshot", **fields)
        self._maybe_compact()
        self.stats["snapshot_seconds"] += time.perf_counter() - started
        return payload["signature"]

    def milestone(self, extras_fn: Callable[[], dict],
                  force: bool = False, tag: Optional[str] = None) -> bool:
        """Snapshot if cut status crossed a milestone; maybe die after.

        Returns True if a milestone was due (written or deduped).
        """
        status = self.design.status
        every = max(1, self.config.snapshot_every)
        due = force or self._last_status is None \
            or status // every > self._last_status // every
        if not due:
            return False
        self.snapshot(tag or ("status-%03d" % status), extras_fn(),
                      dedupe=True, milestone=True)
        self._milestones += 1
        # before _maybe_die: a killed process must leave its segment's
        # wall clock behind for the resumed report's cpu_seconds
        self.rundir.save_elapsed(self.elapsed_seconds())
        self._maybe_die(status)
        return True

    def seed_snapshot(self, snapshot_record: dict, status: int,
                      payload: Optional[dict] = None) -> None:
        """Adopt an existing on-disk snapshot as current (resume path).

        ``payload`` comes from :func:`load_snapshot_payload`; with it
        the resumed process dedupes against the dead process's last
        snapshot and chains its next delta straight off it.  The
        snapshot ordinal and chain depth are re-derived from the
        journal so new files never collide.
        """
        self._last_signature = snapshot_record["signature"]
        self._last_status = status
        if payload is not None:
            self._last_canon = json.dumps(payload, sort_keys=True,
                                          separators=(",", ":"))
            self._base_payload = payload
            self._base_file = snapshot_record["file"]
        top = -1
        chain_len = 0
        for record in self.journal:
            if record["type"] != "snapshot":
                continue
            ordinal = record.get("ordinal",
                                 _file_ordinal(record["file"]))
            top = max(top, ordinal)
            if record.get("kind", "full") == "full":
                chain_len = 0
            else:
                chain_len += 1
        self._ordinal = top + 1
        self._chain_len = chain_len

    def _maybe_die(self, status: int) -> None:
        if self._died:
            return
        at_snapshot = self.config.die_at_snapshot
        if at_snapshot is not None and self._milestones >= at_snapshot:
            self._died = True
            raise SystemExit(DIE_EXIT_CODE)
        target = self.config.die_at_status
        if target is not None and status >= target:
            self._died = True
            raise SystemExit(DIE_EXIT_CODE)

    # -- journal compaction --------------------------------------------

    def _chain_base_record(self) -> Optional[dict]:
        """The journal record of the newest *full* snapshot."""
        for record in reversed(self.journal.records):
            if (record["type"] == "snapshot"
                    and record.get("kind", "full") == "full"):
                return record
        return None

    def _maybe_compact(self) -> None:
        """Compact the journal when the pre-chain tail has grown.

        Everything before the chain-base full snapshot record is
        unneeded for resume (resume wants the latest snapshot, its
        chain base, and the transform records after it), so those
        records are folded away and the snapshot files only they
        reference are deleted.
        """
        every = self.config.compact_every
        if every <= 0:
            return
        base = self._chain_base_record()
        if base is None or base["seq"] < every:
            return
        stale = [r["file"] for r in self.journal.records
                 if r["type"] == "snapshot" and r["seq"] < base["seq"]]
        self.journal.compact(base["seq"], base_file=base["file"])
        self.stats["compactions"] += 1
        for filename in stale:
            try:
                os.remove(self.rundir.snapshot_file(filename))
            except OSError:
                pass

    # -- substrate restore ---------------------------------------------

    def ensure_current(self, extras_fn: Callable[[], dict],
                       tag: str) -> None:
        """Guarantee the latest snapshot matches the live design.

        Called before an unrollbackable substrate operation: if the
        design drifted since the last snapshot, write a fresh one so a
        failure can restore to *this* state rather than an older one.
        """
        if (self._last_signature is not None
                and state_signature(self.design) == self._last_signature):
            return
        self.snapshot(tag, extras_fn())

    def latest_snapshot(self) -> dict:
        """The payload of the most recent snapshot on disk.

        Delta records are resolved through their chain, so the caller
        always sees a full payload.
        """
        record = self.journal.last_of_type("snapshot")
        if record is None:
            raise SnapshotError("no snapshot in journal %s"
                                % self.journal.path)
        return load_snapshot_payload(self.rundir, record)

    def restore_latest(self) -> dict:
        """Restore the design in place from the latest snapshot.

        Returns the payload so the caller can re-apply its ``extras``
        (scenario/transform state captured alongside the design).
        """
        self._check_fence()
        payload = self.latest_snapshot()
        restore_design(self.design, payload)
        self.journal.append("restore", signature=payload["signature"],
                            status=self.design.status)
        return payload

    # -- reporting -----------------------------------------------------

    def elapsed_seconds(self) -> float:
        """Whole-run wall clock: every dead segment plus this one."""
        return (self.prior_seconds
                + time.perf_counter() - self._wall_t0)

    def counters(self) -> Dict[str, int]:
        """Persistence activity for ``repro.obs``: snapshot/delta
        counts and bytes, dedupes, compactions, journal records —
        plus the storage shim's I/O accounting (writes, fsyncs,
        retries, injected and fatal faults), so every metrics sink
        that carries persist counters also carries the disk story."""
        flat = {key: value for key, value in self.stats.items()
                if isinstance(value, int)}
        flat["journal_records"] = len(self.journal)
        flat.update(storage.counters())
        return flat

    # -- completion ----------------------------------------------------

    def finish(self, report_state: dict) -> None:
        """Seal the run: elapsed, ``run_end``, signed report."""
        self._check_fence()
        self.rundir.save_elapsed(self.elapsed_seconds())
        self.journal.append("run_end",
                            signature=state_signature(self.design),
                            status=self.design.status)
        report_state = dict(report_state)
        report_state["state_signature"] = state_signature(self.design)
        self.rundir.write_report(report_state)
