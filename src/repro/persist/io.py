"""The storage I/O boundary: every durable byte goes through here.

``repro.persist`` (journal appends, snapshot/delta files, run-dir
JSON) and ``repro.serve`` (fence files, heartbeats) used to call
``open``/``write``/``fsync``/``os.replace`` directly, which left two
gaps in the durability story:

* **No single choke point.**  The crash matrix could kill the
  *process* at any milestone, but nothing could make the *filesystem*
  misbehave — disk full, EIO, a failed fsync, a torn or bit-flipped
  write.  Routing every durable operation through this module gives
  the chaos harness one seam: :func:`set_fault_hook` installs a
  deterministic, seeded fault plan (see
  :meth:`repro.guard.faults.FaultInjector.io_hook`) that can fail any
  operation by kind, operation name, and path.

* **No transient-vs-fatal policy.**  A real fleet sees both kinds of
  I/O error.  Transient ones (``EINTR``, ``EAGAIN``, ``EIO`` — a
  controller hiccup) are retried with bounded exponential backoff and
  counted in ``io_retries``.  Fatal ones (``ENOSPC``, ``EDQUOT``,
  ``EROFS``, ``EACCES``, ``EPERM``, or a transient that survives the
  whole retry budget) raise :class:`IoFatalError`, which the CLI and
  the serve worker translate into the documented exit code
  :data:`IO_EXIT_CODE` — the run directory is left at its last good
  milestone and ``--resume`` continues bit-identically once the disk
  recovers.

Durability rules enforced here (and nowhere else, so they cannot
drift per call site):

* an atomic publish is *tmp write → fsync(file) → os.replace →
  fsync(parent dir)* — without the final directory fsync the rename
  itself is not durable across a power cut (the satellite fix this PR
  lands everywhere via :func:`fsync_dir`);
* an append is *write → flush → fsync* on the live file;
* all failures funnel through one classifier, all retries through one
  counter, so ``/metrics`` (``io_retries``, ``io_faults_fatal``)
  reflects every storage wobble in the process.

The injected fault kinds mirror what the wrappers can then exhibit:

=============  ======================================================
DISK_FULL      the operation raises ``OSError(ENOSPC)`` (fatal)
IO_ERROR       the operation raises ``OSError(EIO)`` (transient:
               retried, succeeds if the hook relents)
FSYNC_FAIL     only ``fsync`` operations fail (``EIO``) — the
               write looked fine but never reached the platter
TORN_WRITE     an append writes a prefix of its payload then raises
               — exactly the tail the journal recovery scan drops
BIT_FLIP       the write lands, then one bit of the written range is
               flipped in place — silent corruption only a CRC,
               gzip checksum, or signature verify can catch
=============  ======================================================
"""

from __future__ import annotations

import errno
import json
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

#: process exit code for a fatal storage failure (documented in
#: docs/operations.md §8; distinct from DIE=17, BAD_JOB=3, FENCED=4)
IO_EXIT_CODE = 5

#: errnos retried with backoff before being escalated to fatal
TRANSIENT_ERRNOS = (errno.EINTR, errno.EAGAIN, errno.EIO,
                    errno.ENOBUFS)

#: errnos that are hopeless to retry: fail fast, resume later
FATAL_ERRNOS = (errno.ENOSPC, errno.EDQUOT, errno.EROFS,
                errno.EACCES, errno.EPERM)


class IoFatalError(Exception):
    """A durable write could not be completed, even with retries.

    Carries the operation, path, and the underlying ``OSError`` so
    the flow's abort message (and the serve worker's journal record)
    say exactly which write was lost.  The run directory is left at
    its last completed milestone: nothing after a raised
    ``IoFatalError`` was partially applied, because every wrapper is
    atomic-or-absent.
    """

    def __init__(self, op: str, path: str, cause: OSError) -> None:
        self.op = op
        self.path = path
        self.cause = cause
        super().__init__("fatal I/O failure: %s %s: %s"
                         % (op, path, cause))


@dataclass
class IoPolicy:
    """Retry policy for transient storage errors."""

    #: attempts after the first failure (0 = fail immediately)
    retries: int = 3
    #: first backoff sleep in seconds; doubles per retry
    backoff_base: float = 0.02
    #: backoff ceiling in seconds
    backoff_cap: float = 0.5
    #: injected sleeps go through here (tests pass a no-op)
    sleep: Callable[[float], None] = time.sleep

    def delay(self, attempt: int) -> float:
        """The backoff before retry ``attempt`` (0-based)."""
        return min(self.backoff_cap,
                   self.backoff_base * (2.0 ** attempt))


#: the process-wide policy; tests may swap it wholesale
_policy = IoPolicy()

#: the installed fault hook: ``hook(op, path) -> Optional[FaultKind]``
_fault_hook: Optional[Callable[[str, str], object]] = None

#: process-wide storage accounting (see :func:`counters`)
_counters: Dict[str, int] = {}


def _zero() -> Dict[str, int]:
    return {"io_writes": 0, "io_fsyncs": 0, "io_replaces": 0,
            "io_dir_fsyncs": 0, "io_retries": 0, "io_faults_fatal": 0,
            "io_faults_injected": 0}


_counters = _zero()


def counters() -> Dict[str, int]:
    """Storage-shim activity for ``repro.obs`` counter registries."""
    return dict(_counters)


def reset_counters() -> None:
    """Zero the accounting (test isolation)."""
    _counters.update(_zero())


def set_policy(policy: IoPolicy) -> None:
    """Replace the process-wide retry policy."""
    global _policy
    _policy = policy


def get_policy() -> IoPolicy:
    """The active retry policy."""
    return _policy


def set_fault_hook(hook: Optional[Callable[[str, str], object]]) -> None:
    """Install (or with ``None`` clear) the injection hook.

    The hook is consulted before every guarded operation with
    ``(op, path)`` — ``op`` is one of ``write``, ``fsync``,
    ``replace``, ``fsync_dir``, ``truncate`` — and returns a
    :class:`repro.guard.faults.FaultKind` (or None).  The wrappers
    turn the kind into the matching filesystem misbehavior.
    """
    global _fault_hook
    _fault_hook = hook


def clear_fault_hook() -> None:
    """Remove any installed fault hook."""
    set_fault_hook(None)


def _consult(op: str, path: str):
    """The armed fault for this operation, as a kind *value* string.

    The hook returns FaultKind members; comparing on ``.value``
    avoids importing ``repro.guard`` here (persist must stay
    importable without the guard package's heavier deps at call
    time — and the string form is what tests can pass directly).
    """
    if _fault_hook is None:
        return None
    kind = _fault_hook(op, path)
    if kind is None:
        return None
    _counters["io_faults_injected"] += 1
    return getattr(kind, "value", kind)


def _injected_error(kind: str, op: str, path: str) -> Optional[OSError]:
    """The OSError an injected fault kind maps to (None = handled
    specially by the write path itself, e.g. BIT_FLIP)."""
    if kind == "disk-full":
        return OSError(errno.ENOSPC, "injected: no space left on "
                       "device", path)
    if kind == "io-error":
        return OSError(errno.EIO, "injected: input/output error", path)
    if kind == "fsync-fail" and op in ("fsync", "fsync_dir"):
        return OSError(errno.EIO, "injected: fsync failed", path)
    return None


def is_transient(exc: OSError) -> bool:
    """Is this failure worth retrying?"""
    return exc.errno in TRANSIENT_ERRNOS


def is_fatal(exc: OSError) -> bool:
    """Is this failure hopeless (retry cannot help)?"""
    return exc.errno in FATAL_ERRNOS


def _guarded(op: str, path: str, action: Callable[[], object]):
    """Run one storage operation under injection + retry + escalation.

    The injected fault is consulted once per *attempt*, so a
    transient injection (IO_ERROR armed for one shot) is survived by
    the retry loop — exactly how a real controller hiccup behaves —
    while a persistent one (DISK_FULL, or a hook that keeps firing)
    escalates to :class:`IoFatalError`.
    """
    policy = _policy
    attempt = 0
    while True:
        try:
            kind = _consult(op, path)
            if kind is not None:
                exc = _injected_error(kind, op, path)
                if exc is not None:
                    raise exc
            return action()
        except OSError as exc:
            if is_fatal(exc) or not is_transient(exc) \
                    or attempt >= policy.retries:
                _counters["io_faults_fatal"] += 1
                raise IoFatalError(op, path, exc)
            _counters["io_retries"] += 1
            policy.sleep(policy.delay(attempt))
            attempt += 1


# -- primitives ---------------------------------------------------------


def fsync_dir(path: str) -> None:
    """fsync a *directory*, making renames inside it durable.

    ``os.replace`` updates the parent directory's entry table; until
    the directory inode itself is flushed, a power cut can roll the
    rename back (or worse, leave neither name).  Every atomic publish
    below ends with this call — the durability gap this PR closes
    across journal rewrites, snapshots, deltas, run JSON, and fences.
    """
    def action():
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        _counters["io_dir_fsyncs"] += 1

    _guarded("fsync_dir", path, action)


def _write_and_sync(stream, path: str, data: bytes, op_path: str) -> None:
    """Write bytes to an open stream with torn/bit-flip injection."""
    kind = _consult("write", op_path)
    if kind == "torn-write":
        torn = data[:max(0, len(data) // 2)]
        stream.write(torn)
        stream.flush()
        try:
            os.fsync(stream.fileno())
        except OSError:
            pass
        _counters["io_faults_fatal"] += 1
        raise IoFatalError(
            "write", op_path,
            OSError(errno.EIO, "injected: torn write after %d/%d "
                    "bytes" % (len(torn), len(data)), op_path))
    exc = _injected_error(kind, "write", op_path) if kind else None
    if exc is not None:
        raise exc
    start = stream.tell()
    stream.write(data)
    _counters["io_writes"] += 1
    stream.flush()
    if kind == "bit-flip" and data:
        # flip one bit of what was just written, in place: the write
        # "succeeded", the bytes on disk silently did not
        stream.flush()
        with open(path, "r+b") as victim:
            offset = start + (len(data) // 2)
            victim.seek(offset)
            byte = victim.read(1)
            if byte:
                victim.seek(offset)
                victim.write(bytes([byte[0] ^ 0x10]))

    def sync():
        os.fsync(stream.fileno())
        _counters["io_fsyncs"] += 1

    _guarded("fsync", op_path, sync)


def append_bytes(path: str, data: bytes) -> None:
    """Durably append raw bytes: write → flush → fsync.

    The journal's O(1) hot path.  A torn-write injection (or a real
    crash mid-write) leaves a prefix of ``data`` on disk — exactly
    the torn tail :meth:`repro.persist.journal.Journal.open`
    truncates and :meth:`~repro.persist.journal.Journal.refresh`
    repairs in place.

    Appending is not naturally idempotent, so each retry first
    truncates the file back to the size captured before the first
    attempt: a transient error can strike *after* part of ``data``
    reached the file, and blindly re-running the append would land
    the full payload behind the partial prefix — a corrupt merged
    line whose extra bytes also throw off every offset the journal's
    valid-byte accounting later truncates at.
    """
    try:
        base = os.path.getsize(path)
    except OSError:
        base = 0  # no file yet: the first attempt creates it

    def action():
        try:
            size = os.path.getsize(path)
        except OSError:
            size = base
        if size > base:
            with open(path, "r+b") as stream:
                stream.truncate(base)
        with open(path, "ab") as stream:
            _write_and_sync(stream, path, data, path)

    _guarded("open", path, action)


def append_text(path: str, text: str) -> None:
    """Durably append UTF-8 text (journal lines, trace records)."""
    append_bytes(path, text.encode("utf-8"))


def replace(tmp: str, path: str, dir_sync: bool = True) -> None:
    """``os.replace`` plus the parent-directory fsync that makes the
    rename itself durable."""
    def action():
        os.replace(tmp, path)
        _counters["io_replaces"] += 1

    _guarded("replace", path, action)
    if dir_sync:
        fsync_dir(os.path.dirname(os.path.abspath(path)) or ".")


def truncate(path: str, size: int) -> None:
    """Durably truncate a file in place (torn-tail repair)."""
    def action():
        with open(path, "r+b") as stream:
            stream.truncate(size)
            stream.flush()
            os.fsync(stream.fileno())

    _guarded("truncate", path, action)


def atomic_write_bytes(path: str, data: bytes, fsync: bool = True,
                       dir_sync: bool = True,
                       tmp_suffix: Optional[str] = None) -> None:
    """Publish ``data`` at ``path`` atomically and durably.

    tmp write → fsync(file) → replace → fsync(dir).  ``fsync=False``
    drops both syncs for observe-only files (heartbeats, metric
    sinks) where atomicity matters but a lost last write does not.
    A crash at any point leaves either the old file or the new one,
    never a mix — plus possibly a ``*.tmp`` orphan, which run-dir
    open and ``repro fsck`` sweep.
    """
    tmp = path + (tmp_suffix or ".tmp")

    def action():
        with open(tmp, "wb") as stream:
            if fsync:
                _write_and_sync(stream, tmp, data, path)
            else:
                kind = _consult("write", path)
                exc = (_injected_error(kind, "write", path)
                       if kind else None)
                if exc is not None:
                    raise exc
                stream.write(data)
                _counters["io_writes"] += 1

    _guarded("open", path, action)
    replace(tmp, path, dir_sync=fsync and dir_sync)


def atomic_write_text(path: str, text: str, fsync: bool = True,
                      dir_sync: bool = True,
                      tmp_suffix: Optional[str] = None) -> None:
    """UTF-8 variant of :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync,
                       dir_sync=dir_sync, tmp_suffix=tmp_suffix)


def atomic_write_json(path: str, payload, fsync: bool = True,
                      dir_sync: bool = True, indent: Optional[int] = None,
                      tmp_suffix: Optional[str] = None) -> None:
    """Publish a JSON document atomically (sorted keys, trailing
    newline — the shape every small state file in the repo uses)."""
    text = json.dumps(payload, indent=indent, sort_keys=True) + "\n"
    atomic_write_text(path, text, fsync=fsync, dir_sync=dir_sync,
                      tmp_suffix=tmp_suffix)


# -- temp-file hygiene --------------------------------------------------


def sweep_tmp(directory: str,
              suffix_contains: str = ".tmp") -> int:
    """Delete stale ``*.tmp`` debris in one directory (not recursive).

    A crash between the tmp write and the ``os.replace`` strands the
    temp file forever; every attach point (run-dir open, journal
    open/create, fsck) calls this.  Single-writer attach semantics
    make it safe: nobody can be mid-publish in a directory that is
    only now being opened.  Returns the number of files removed.
    """
    removed = 0
    try:
        names = os.listdir(directory)
    except OSError:
        return 0
    for name in names:
        if suffix_contains not in name:
            continue
        if not (name.endswith(".tmp") or ".tmp." in name):
            continue
        try:
            full = os.path.join(directory, name)
            if os.path.isfile(full):
                os.remove(full)
                removed += 1
        except OSError:
            pass
    return removed
