"""The SPR baseline: Synthesis -> Placement -> Resynthesis, iterated.

This is the traditional flow Table 1 compares against:

1. **Synthesis** on a *wire load model* (no placement knowledge):
   gain assignment, discretization against WLM loads, sizing and
   fanout buffering driven by WLM timing.
2. **Placement** by a stand-alone quadratic placer with *static* net
   weights frozen from the post-synthesis timing sign-off — the
   approach criticised in section 4.3.
3. Clock tree and scan optimization *after* placement, with no space
   reservation (the late-disturbance problem of section 4.5).
4. **Resynthesis** against real Steiner loads, followed by another
   placement pass — iterated until timing stops improving.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, TYPE_CHECKING, TypeVar

from repro.design import Design
from repro.guard.faults import FaultInjector
from repro.guard.runner import GuardConfig, GuardedRunner
from repro.netlist import ops
from repro.obs import Tracer, TraceWriter
from repro.placement import QuadraticPlacer, legalize_rows
from repro.routing import GlobalRouter, cut_metrics
from repro.scenario.report import FlowReport, TraceEvent, report_state, snapshot
from repro.timing import DelayMode
from repro.timing.engine import INF
from repro.transforms import BufferInsertion, ClockScanOptimizer, PinSwapping
from repro.transforms.base import TimingProbe
from repro.transforms.sizing import GateSizing
from repro.wirelength.wlm import WireLoadModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.persist import FlowPersist


@dataclass
class SPRConfig:
    """Knobs of the baseline flow."""

    max_iterations: int = 3
    default_gain: float = 3.0
    seed: int = 0
    wlm_cap_per_fanout: float = 6.0
    fanout_buffer_threshold: int = 8
    regs_per_clock_buffer: int = 6
    #: stop iterating when slack improves less than this (ps)
    convergence_ps: float = 2.0
    #: guarded transform execution (None = bare); see ``repro.guard``.
    guard: Optional[GuardConfig] = None

    def to_state(self) -> dict:
        return {
            "max_iterations": self.max_iterations,
            "default_gain": self.default_gain,
            "seed": self.seed,
            "wlm_cap_per_fanout": self.wlm_cap_per_fanout,
            "fanout_buffer_threshold": self.fanout_buffer_threshold,
            "regs_per_clock_buffer": self.regs_per_clock_buffer,
            "convergence_ps": self.convergence_ps,
            "guard": (self.guard.to_state()
                      if self.guard is not None else None),
        }

    @classmethod
    def from_state(cls, state: dict) -> "SPRConfig":
        state = dict(state)
        guard = state.pop("guard")
        return cls(guard=(GuardConfig.from_state(guard)
                          if guard is not None else None), **state)


T = TypeVar("T")


class SPRFlow:
    """Run the iterative synthesis/placement baseline on a design."""

    def __init__(self, design: Design,
                 config: Optional[SPRConfig] = None,
                 injector: Optional[FaultInjector] = None,
                 persist: Optional["FlowPersist"] = None,
                 resume_state: Optional[dict] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.design = design
        self.config = config or SPRConfig()
        self.injector = injector
        #: durable flow state: snapshots at iteration granularity
        self.persist = persist
        self.resume_state = resume_state
        # persist wins the default: durable runs retry transient
        # failures before striking, even when chaos is also injected
        if persist is not None and self.config.guard is None:
            self.config.guard = GuardConfig(retries=2)
        if injector is not None and self.config.guard is None:
            self.config.guard = GuardConfig()
        # durable runs get telemetry for free (see TPSScenario)
        if tracer is None and persist is not None:
            tracer = Tracer(design, writer=TraceWriter(
                persist.rundir.trace_path, resume=persist.resumed))
        self.tracer = tracer
        self.trace: List[TraceEvent] = []
        self.runner: Optional[GuardedRunner] = None

    def _log(self, what: str) -> None:
        self.trace.append(TraceEvent(message=what))

    def _traced(self, name: str, kind: str,
                fn: Callable[[], T]) -> Optional[T]:
        """Run ``fn`` inside an obs span (when tracing is on)."""
        if self.tracer is None:
            return fn()
        with self.tracer.span(name, kind) as span:
            result = fn()
            if self.runner is not None and result is None:
                span.ok = False  # guarded call failed or quarantined
            return result

    def _guarded(self, name: str, fn: Callable[[], T]) -> Optional[T]:
        """Run one transform invocation, transactionally if guarded."""
        if self.runner is None:
            return self._traced(name, "transform", fn)
        return self._traced(name, "transform",
                            lambda: self.runner.call(name, fn))

    def run(self) -> FlowReport:
        started = time.perf_counter()
        if self.config.guard is not None:
            self.runner = GuardedRunner(
                self.design, self.config.guard, injector=self.injector,
                log=self._log)
            if self.persist is not None:
                self.runner.recorder = self.persist
        design = self.design
        cfg = self.config
        persist = self.persist
        resume = self.resume_state
        tracer = self.tracer
        if tracer is not None:
            if self.runner is not None:
                tracer.counters.add("guard", self.runner.counters)
            if persist is not None:
                tracer.counters.add("persist", persist.counters)
            # ended just before the report: its "after" == the report
            flow_span = tracer.begin("SPR", kind="flow")
        # the placement-aware model is the design's own attribute; the
        # engine may be holding the WLM whenever a snapshot lands, so
        # never capture "real" from the engine
        real_model = design.wire_model
        sizing = GateSizing(default_gain=cfg.default_gain)
        wlm = WireLoadModel(design.steiner, design.parasitics,
                            cap_per_fanout=cfg.wlm_cap_per_fanout)

        clock_scan = ClockScanOptimizer(
            regs_per_buffer=cfg.regs_per_clock_buffer)
        pinswap = PinSwapping()
        # Post-placement resynthesis "significantly limit[s] the netlist
        # changes that can be made to be able to maintain incrementality
        # in the succeeding placement" (section 1): buffers may only go
        # where space already exists — no circuit relocation.
        buffering = BufferInsertion(relocate_for_space=False)

        best_slack = -INF
        iterations = 0
        next_iteration = 0
        iter_step = 0
        post_loop = False

        def snapshot_extras() -> dict:
            extras = {
                "scenario": {
                    "next_iteration": next_iteration,
                    "best_slack": best_slack,
                    "iterations": iterations,
                    "iter_step": iter_step,
                    "post_loop": post_loop,
                    "trace": [e.to_state() for e in self.trace],
                },
                "clock_scan": clock_scan.state_dict(),
            }
            if self.runner is not None:
                extras["guard"] = self.runner.state_dict()
            if self.injector is not None:
                extras["injector"] = self.injector.state_dict()
            return extras

        if persist is not None and self.runner is not None:
            def disk_restore() -> None:
                payload = persist.restore_latest()
                extras = payload.get("extras", {})
                clock_scan.load_state_dict(extras["clock_scan"],
                                           design.library)

            self.runner.disk_restore = disk_restore

        def substrate(name: str, fn: Callable[[], T]) -> Optional[T]:
            if self.runner is None:
                return self._traced(name, "substrate", fn)
            if persist is not None:
                persist.ensure_current(snapshot_extras, "pre-" + name)
            return self._traced(
                name, "substrate",
                lambda: self.runner.call_substrate(name, fn))

        if resume is not None:
            scen = resume["scenario"]
            next_iteration = scen["next_iteration"]
            best_slack = scen["best_slack"]
            iterations = scen["iterations"]
            iter_step = scen.get("iter_step", 0)
            post_loop = scen["post_loop"]
            self.trace = [TraceEvent.from_state(s)
                          for s in scen["trace"]]
            clock_scan.load_state_dict(resume["clock_scan"],
                                       design.library)
            if self.runner is not None and resume.get("guard"):
                self.runner.load_state_dict(resume["guard"])
            if self.injector is not None and resume.get("injector"):
                self.injector.load_state_dict(resume["injector"])
            if self.runner is not None:
                # persistent quarantine carried across processes
                for name in resume.get("quarantine", ()):
                    self.runner.force_quarantine(name)
            self._log("resumed from on-disk snapshot (iteration %d, "
                      "step %d)" % (next_iteration, iter_step))
        else:
            if persist is not None and not persist.resumed:
                persist.start("SPR", cfg.seed)
            # ---- 1. stand-alone synthesis on the wire load model ------
            design.timing.set_wire_model(wlm)
            sizing.assign_gains(design)
            design.timing.set_mode(DelayMode.LOAD)
            sizing.discretize(design)
            self._log("synthesis: discretized on WLM")
            self._guarded("gate_sizing_for_speed",
                          lambda: sizing.gate_sizing_for_speed(design))
            self._guarded("fanout_buffering",
                          lambda: self._fanout_buffering(design))
            self._log("synthesis: WLM slack %.1f"
                      % design.timing.worst_slack())

            # net weights frozen from the synthesis sign-off
            self._freeze_net_weights(design)
            if persist is not None:
                persist.milestone(snapshot_extras, force=True,
                                  tag="synth")

        if not post_loop:
            for iteration in range(next_iteration, cfg.max_iterations):
                # Every iteration is a list of named transform-boundary
                # steps; a milestone snapshot lands after each one, and
                # ``iter_step`` in the snapshot extras records how many
                # steps of this iteration already ran — so a kill
                # mid-iteration resumes at the last transform boundary
                # rather than replaying the whole iteration.
                def place() -> None:
                    # ---- 2. stand-alone placement --------------------
                    substrate("quadratic_placer",
                              lambda: QuadraticPlacer(
                                  design,
                                  seed=cfg.seed + iteration).run())

                def legalize() -> None:
                    substrate("legalizer", lambda: legalize_rows(design))
                    self._log("iter %d: quadratic placement + "
                              "legalization" % iteration)

                def cts() -> None:
                    # ---- 3. late clock tree & scan, no space
                    # reservation --------------------------------------
                    design.timing.set_wire_model(real_model)
                    self._guarded(
                        "clock_scan",
                        lambda: (clock_scan.clock_optimization(design),
                                 clock_scan.scan_optimization(design)))

                def legalize_cts() -> None:
                    # clean up the disturbance
                    substrate("legalizer", lambda: legalize_rows(design))
                    self._log("iter 0: clock/scan inserted "
                              "post-placement")

                def real_loads() -> None:
                    design.timing.set_wire_model(real_model)

                # ---- 4. resynthesis against real loads ---------------
                steps = [("place", place), ("legalize", legalize)]
                if iteration == 0:
                    steps += [("clock_scan", cts),
                              ("legalize_cts", legalize_cts)]
                else:
                    steps.append(("real_loads", real_loads))
                steps += [
                    ("size_speed",
                     lambda: self._guarded(
                         "gate_sizing_for_speed",
                         lambda: sizing.gate_sizing_for_speed(design))),
                    ("buffer",
                     lambda: self._guarded(
                         "buffer_insertion",
                         lambda: buffering.run(design))),
                    ("pinswap",
                     lambda: self._guarded(
                         "pin_swapping", lambda: pinswap.run(design))),
                    ("size_area",
                     lambda: self._guarded(
                         "gate_sizing_for_area",
                         lambda: sizing.gate_sizing_for_area(design))),
                    ("legalize_resynth",
                     lambda: substrate("legalizer",
                                       lambda: legalize_rows(design))),
                ]
                # iter_step > 0 only on the first resumed iteration
                for index in range(iter_step, len(steps)):
                    name, step = steps[index]
                    step()
                    iter_step = index + 1
                    if persist is not None:
                        persist.milestone(
                            snapshot_extras, force=True,
                            tag="iter-%d-%s" % (iteration, name))

                slack = design.timing.worst_slack()
                self._log("iter %d: resynthesis slack %.1f"
                          % (iteration, slack))
                converged = slack <= best_slack + cfg.convergence_ps
                if converged:
                    best_slack = max(best_slack, slack)
                else:
                    best_slack = slack
                    if iteration + 1 < cfg.max_iterations:
                        # next placement run biases toward the new
                        # critical nets
                        self._freeze_net_weights(design)
                        design.timing.set_wire_model(wlm)
                iterations = iteration + 1
                next_iteration = iteration + 1
                iter_step = 0
                # decide loop exit *before* the iteration-end milestone
                # so a resume from it agrees with the uninterrupted run
                # about whether another iteration follows
                post_loop = (converged
                             or next_iteration >= cfg.max_iterations)
                if persist is not None:
                    persist.phase(design.status, iteration=iteration,
                                  slack=slack)
                    persist.milestone(snapshot_extras, force=True,
                                      tag="iter-%d" % iteration)
                if post_loop:
                    break

        post_loop = True
        if persist is not None:
            # interruption in the routing postlude resumes here
            persist.milestone(snapshot_extras, force=True, tag="final")

        # Route on the same image resolution a TPS run would end at, so
        # the wires-cut metrics of the two flows are comparable.
        from repro.placement.partitioner import standard_grid_dims
        nx, ny = standard_grid_dims(design)
        design.grid.resize(nx, ny)
        router = GlobalRouter(design)
        routing = self._traced("routing", "substrate", router.route)
        self._guarded("in_footprint_sizing",
                      lambda: sizing.in_footprint_sizing(design))
        self._log("routed: overflow %.1f" % routing.total_overflow)
        if self.runner is not None:
            for line in self.runner.health_lines():
                self._log("health: %s" % line)

        if tracer is not None:
            tracer.end(flow_span)
        report = snapshot(
            design, "SPR", cuts=cut_metrics(router),
            routable=routing.routable,
            # whole-run wall clock, dead process segments included
            cpu_seconds=(persist.elapsed_seconds()
                         if persist is not None
                         else time.perf_counter() - started),
            iterations=iterations, trace=list(self.trace),
            guard=self.runner, tracer=tracer,
            run_dir=persist.rundir.path if persist is not None else None,
            resumed=persist.resumed if persist is not None else False)
        if persist is not None:
            persist.finish(report_state(report))
        return report

    # -- helpers -----------------------------------------------------------

    def _freeze_net_weights(self, design: Design) -> None:
        """Static slack-only net weights from the current timing."""
        worst = design.timing.worst_slack()
        if worst == INF:
            return
        window = 0.15 * design.constraints.cycle_time
        for net in design.netlist.nets():
            if net.is_clock or net.is_scan:
                continue
            slack = design.timing.net_slack(net)
            if slack == INF:
                net.weight = net.base_weight
                continue
            depth = min(1.0, max(0.0, (worst + window - slack) / window))
            net.weight = net.base_weight * (1.0 + 3.0 * depth)

    def _fanout_buffering(self, design: Design) -> None:
        """Placement-blind fanout fixing during synthesis."""
        threshold = self.config.fanout_buffer_threshold
        for net in list(design.netlist.nets()):
            sinks = net.sinks()
            if len(sinks) < threshold or net.is_clock or net.is_scan:
                continue
            probe = TimingProbe(design)
            buf = ops.insert_buffer(design.netlist, design.library, net,
                                    sinks[len(sinks) // 2:],
                                    position=None, buffer_x=4.0)
            buf.gain = design.timing.default_gain
            if not probe.improved():
                ops.remove_buffer(design.netlist, buf)
