"""Flow orchestration (section 5).

``TPSScenario`` is the paper's Figure 5: placement advances in status
steps, and synthesis/placement transforms fire in their status
windows, producing a single converging flow.  ``SPRFlow`` is the
baseline it is compared against in Table 1: stand-alone synthesis on a
wire-load model, a stand-alone quadratic placement, then
resynthesis — iterated.
"""

from repro.scenario.report import FlowReport, TraceEvent
from repro.scenario.tps import TPSConfig, TPSScenario
from repro.scenario.spr import SPRConfig, SPRFlow

__all__ = [
    "FlowReport",
    "TraceEvent",
    "TPSConfig",
    "TPSScenario",
    "SPRConfig",
    "SPRFlow",
]
