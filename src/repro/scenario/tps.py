"""The TPS scenario: the optimization flow chart of Figure 5.

status = 0; step = 5
while place_status < 100:
    target = status + step; status = Partitioner(target); Reflow()
    20 < status < 30 : Gate_sizing_for_area()
    status == 30     : Clock_optimization()
    status > 30      : Gate_sizing_for_speed()
    30 < status < 50 : circuit_migration(); Cloning_and_Buffering()
    status > 50      : Pin_swapping()
    status > 80      : Gate_sizing_for_area()
Detailed_placement(); Routing(); In_foot_print_gate_sizing()

plus, per sections 4.3/4.4: logical-effort net weights refreshed on
every cut, virtual discretization while the timer is gain-based, and
the discretize-and-link switch to actual delays at ``link_status``.

With ``TPSConfig.guard`` set (or a fault injector supplied) every
transform invocation runs through a
:class:`~repro.guard.runner.GuardedRunner`: exception-isolated,
wall-clock budgeted, invariant-checked, rolled back on failure and
quarantined after repeated failures — the flow converges even when
individual transforms crash or corrupt state.

With a :class:`~repro.persist.FlowPersist` attached the run is also
*durable*: every guarded invocation is journaled write-ahead, a
design snapshot lands on disk at every transform boundary inside a
cut level (step-granular milestones — a kill mid-level resumes at the
last completed transform, not the level start), the partitioner and
legalizer run under the snapshot-backed substrate guard, and a killed
process can be resumed (``--resume``) from the last snapshot with
bit-identical continuation.  In ``snapshot_mode="delta"`` those
per-step snapshots are diffs against the previous one, so the many
small steps between partitioner cuts cost little to persist.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, TYPE_CHECKING, TypeVar

from repro.design import Design
from repro.guard.faults import FaultInjector
from repro.guard.runner import GuardConfig, GuardedRunner
from repro.obs import Tracer, TraceWriter
from repro.placement import DetailedPlaceOpt, Partitioner, Reflow, legalize_rows
from repro.routing import GlobalRouter, cut_metrics
from repro.scenario.report import FlowReport, TraceEvent, report_state, snapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.persist import FlowPersist
from repro.transforms import (
    BufferInsertion,
    CircuitMigration,
    ClockScanOptimizer,
    Cloning,
    LogicalEffortNetWeight,
    PinSwapping,
    RedundancyCleanup,
    WeightMode,
)
from repro.transforms.sizing import GateSizing

T = TypeVar("T")


@dataclass
class TPSConfig:
    """Knobs of the TPS scenario (the ablation switches of DESIGN.md)."""

    step: int = 5
    link_status: int = 30
    default_gain: float = 4.0
    seed: int = 0
    #: Figure 5 applies migration/cloning/buffering for 30<status<50;
    #: at reproduction scale a design sees only ~2 cuts in that window,
    #: so the default widens it (same transforms, more invocations) to
    #: also cover the post-scan-reorder statuses.  Set to (30, 50) for
    #: the strict Figure 5 schedule.
    electrical_window: tuple = (30, 92)
    #: repeat migration/cloning/buffering up to this many times per
    #: status while timing still fails and progress is being made.
    electrical_rounds: int = 3
    #: ablations
    use_reflow: bool = True
    netweight_mode: Optional[WeightMode] = WeightMode.INCREMENTAL
    use_migration: bool = True
    use_cloning: bool = True
    use_buffering: bool = True
    use_pin_swapping: bool = True
    use_clock_scan_staging: bool = True
    use_detailed_placement: bool = True
    use_in_footprint_sizing: bool = True
    regs_per_clock_buffer: int = 6
    #: per-invocation work budget of the pin-swapping transform: the
    #: number of critical cells it may visit (PinSwapping.max_cells)
    pin_swap_budget: int = 200
    #: §7 extensions (off by default: not part of the paper's Table 1
    #: scenario): power recovery after closure, hold fixing after
    #: routing, cluster-wise early cuts.
    use_power_recovery: bool = False
    use_hold_fix: bool = False
    cluster_first_cuts: int = 0
    #: guarded transform execution (None = run transforms bare, the
    #: seed behaviour); see ``repro.guard``.
    guard: Optional[GuardConfig] = None

    def to_state(self) -> dict:
        """JSON form for a run directory's run.json (resume rebuilds
        the exact configuration from this)."""
        return {
            "step": self.step,
            "link_status": self.link_status,
            "default_gain": self.default_gain,
            "seed": self.seed,
            "electrical_window": list(self.electrical_window),
            "electrical_rounds": self.electrical_rounds,
            "use_reflow": self.use_reflow,
            "netweight_mode": (self.netweight_mode.value
                               if self.netweight_mode is not None
                               else None),
            "use_migration": self.use_migration,
            "use_cloning": self.use_cloning,
            "use_buffering": self.use_buffering,
            "use_pin_swapping": self.use_pin_swapping,
            "use_clock_scan_staging": self.use_clock_scan_staging,
            "use_detailed_placement": self.use_detailed_placement,
            "use_in_footprint_sizing": self.use_in_footprint_sizing,
            "regs_per_clock_buffer": self.regs_per_clock_buffer,
            "pin_swap_budget": self.pin_swap_budget,
            "use_power_recovery": self.use_power_recovery,
            "use_hold_fix": self.use_hold_fix,
            "cluster_first_cuts": self.cluster_first_cuts,
            "guard": (self.guard.to_state()
                      if self.guard is not None else None),
        }

    @classmethod
    def from_state(cls, state: dict) -> "TPSConfig":
        state = dict(state)
        mode = state.pop("netweight_mode")
        guard = state.pop("guard")
        return cls(
            netweight_mode=(WeightMode(mode) if mode is not None
                            else None),
            electrical_window=tuple(state.pop("electrical_window")),
            guard=(GuardConfig.from_state(guard)
                   if guard is not None else None),
            **state)


class TPSScenario:
    """Run the converging transformational flow on a design."""

    def __init__(self, design: Design,
                 config: Optional[TPSConfig] = None,
                 injector: Optional[FaultInjector] = None,
                 persist: Optional["FlowPersist"] = None,
                 resume_state: Optional[dict] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.design = design
        self.config = config or TPSConfig()
        #: chaos harness: injecting faults implies guarded execution
        self.injector = injector
        #: durable flow state (journal + milestone snapshots); implies
        #: guarded execution with transient-failure retries
        self.persist = persist
        #: snapshot ``extras`` to continue from (design state itself is
        #: restored by the caller before constructing the scenario)
        self.resume_state = resume_state
        # persist wins the default: durable runs retry transient
        # failures before striking, even when chaos is also injected
        if persist is not None and self.config.guard is None:
            self.config.guard = GuardConfig(retries=2)
        if injector is not None and self.config.guard is None:
            self.config.guard = GuardConfig()
        # durable runs get telemetry for free: spans stream to the run
        # directory's trace.jsonl (appending across resumed processes)
        if tracer is None and persist is not None:
            tracer = Tracer(design, writer=TraceWriter(
                persist.rundir.trace_path, resume=persist.resumed))
        self.tracer = tracer
        self.trace: List[TraceEvent] = []
        self.runner: Optional[GuardedRunner] = None
        self._status = 0

    def _log(self, status: int, what: str) -> None:
        self.trace.append(TraceEvent(message=what, status=status))

    def _traced(self, name: str, kind: str,
                fn: Callable[[], T]) -> Optional[T]:
        """Run ``fn`` inside an obs span (when tracing is on)."""
        if self.tracer is None:
            return fn()
        with self.tracer.span(name, kind) as span:
            result = fn()
            if self.runner is not None and result is None:
                span.ok = False  # guarded call failed or quarantined
            return result

    def _guarded(self, name: str, fn: Callable[[], T]) -> Optional[T]:
        """Run one transform invocation, transactionally if guarded."""
        if self.runner is None:
            return self._traced(name, "transform", fn)
        return self._traced(name, "transform",
                            lambda: self.runner.call(name, fn))

    def run(self) -> FlowReport:
        started = time.perf_counter()
        design = self.design
        cfg = self.config
        persist = self.persist
        resume = self.resume_state
        if cfg.guard is not None:
            self.runner = GuardedRunner(
                design, cfg.guard, injector=self.injector,
                log=lambda m: self._log(self._status, m))
            if persist is not None:
                self.runner.recorder = persist
        tracer = self.tracer
        if tracer is not None:
            if self.runner is not None:
                tracer.counters.add("guard", self.runner.counters)
            if persist is not None:
                tracer.counters.add("persist", persist.counters)
            # the whole-run span: ended just before the report is
            # built, so its "after" metrics equal the report's exactly
            flow_span = tracer.begin("TPS", kind="flow")

        sizing = GateSizing(default_gain=cfg.default_gain)
        if resume is None:
            # assign_gains and region seeding initialize the design;
            # a resumed design already carries both in its snapshot
            sizing.assign_gains(design)
            partitioner = Partitioner(
                design, seed=cfg.seed,
                cluster_first_cuts=cfg.cluster_first_cuts)
        else:
            partitioner = Partitioner(
                design, seed=cfg.seed,
                cluster_first_cuts=cfg.cluster_first_cuts,
                state=resume["partitioner"])
        reflow = Reflow(partitioner)
        clock_scan = ClockScanOptimizer(
            regs_per_buffer=cfg.regs_per_clock_buffer)
        netweight = (LogicalEffortNetWeight(mode=cfg.netweight_mode)
                     if cfg.netweight_mode is not None else None)
        migration = CircuitMigration()
        cloning = Cloning()
        buffering = BufferInsertion()
        pinswap = PinSwapping(max_cells=cfg.pin_swap_budget)

        linked = False
        status = 0
        #: step-granular resume position within the current cut level:
        #: 0 = partitioner pending, 1 = partitioner done, k+1 = the
        #: first k post-partitioner steps done
        level_step = 0
        #: status before this level's partitioner ran — the schedule
        #: windows are functions of (prev, status), so a mid-level
        #: resume needs both to rebuild the identical step list
        prev_status = 0
        if resume is not None:
            scen = resume["scenario"]
            status = scen["status"]
            linked = scen["linked"]
            level_step = scen.get("level_step", 0)
            prev_status = scen.get("prev_status", status)
            self.trace = [TraceEvent.from_state(s)
                          for s in scen["trace"]]
            reflow.pass_count = scen["reflow_passes"]
            clock_scan.load_state_dict(resume["clock_scan"],
                                       design.library)
            if self.runner is not None and resume.get("guard"):
                self.runner.load_state_dict(resume["guard"])
            if self.injector is not None and resume.get("injector"):
                self.injector.load_state_dict(resume["injector"])
            if self.runner is not None:
                # persistent quarantine: a transform that crashed the
                # previous process is skipped, not re-run into the wall
                for name in resume.get("quarantine", ()):
                    self.runner.force_quarantine(name)
            self._status = status
            self._log(status, "resumed from on-disk snapshot "
                              "(status %d, step %d)" % (status, level_step))

        def snapshot_extras() -> dict:
            """Scenario + harness state stored beside the design in
            every snapshot (closures see the live loop variables)."""
            extras = {
                "scenario": {
                    "status": status,
                    "linked": linked,
                    "level_step": level_step,
                    "prev_status": prev_status,
                    "trace": [e.to_state() for e in self.trace],
                    "reflow_passes": reflow.pass_count,
                },
                "partitioner": partitioner.state_dict(),
                "clock_scan": clock_scan.state_dict(),
            }
            if self.runner is not None:
                extras["guard"] = self.runner.state_dict()
            if self.injector is not None:
                extras["injector"] = self.injector.state_dict()
            return extras

        if persist is not None and self.runner is not None:
            def disk_restore() -> None:
                # Re-apply the design and the scenario-owned transform
                # state.  Guard/injector state deliberately stays with
                # the *current* process: a substrate retry must draw
                # fresh faults, not replay the one that just failed.
                payload = persist.restore_latest()
                extras = payload.get("extras", {})
                partitioner.load_state_dict(extras["partitioner"])
                clock_scan.load_state_dict(extras["clock_scan"],
                                           design.library)
                scen_extras = extras.get("scenario", {})
                reflow.pass_count = scen_extras.get(
                    "reflow_passes", reflow.pass_count)

            self.runner.disk_restore = disk_restore

        def substrate(name: str, fn: Callable[[], T]) -> Optional[T]:
            """Partitioner/legalizer calls: unrollbackable, so guarded
            by the on-disk snapshot (when persist is active)."""
            if self.runner is None:
                return self._traced(name, "substrate", fn)
            if persist is not None:
                persist.ensure_current(snapshot_extras, "pre-" + name)
            return self._traced(
                name, "substrate",
                lambda: self.runner.call_substrate(name, fn))

        if persist is not None and not persist.resumed:
            persist.start("TPS", cfg.seed)
        if resume is None:
            self._log(0, "initialized (gain-based timing, status 0)")
            if persist is not None:
                persist.milestone(snapshot_extras, force=True,
                                  tag="init")
        def do_reflow() -> None:
            moved = self._guarded("reflow", reflow.run)
            if moved is not None:
                self._log(status, "reflow moved %d" % moved)

        def do_clock_scan() -> None:
            stages = self._guarded(
                "clock_scan",
                lambda: list(clock_scan.apply_for_status(design,
                                                         status)))
            for stage in stages or ():
                self._log(status, "clock/scan stage: %s" % stage)

        def do_net_weights() -> None:
            r = self._guarded("logical_effort_net_weight",
                              lambda: netweight.run(design))
            if r is not None:
                self._log(status, "net weights refreshed")

        def do_discretize() -> None:
            # the linked flag flips *inside* a level, so this step is
            # always scheduled and branches internally — the step list
            # stays identical however far a resume re-enters the level
            nonlocal linked
            if linked:
                return
            if status >= cfg.link_status:
                res = self._guarded("discretize_and_link",
                                    lambda: sizing.link_cells(design))
                if res is not None:
                    linked = True
                    self._log(status,
                              "discretized and linked (%d resized), "
                              "timing -> actual" % res.accepted)
            else:
                res = self._guarded("discretize",
                                    lambda: sizing.discretize(design))
                if res is not None:
                    self._log(status,
                              "virtual discretization (%d resized)"
                              % res.accepted)

        def do_size_area() -> None:
            r = self._guarded(
                "gate_sizing_for_area",
                lambda: sizing.gate_sizing_for_area(design))
            if r is not None:
                self._log(status, "area recovery: %s" % r)

        def do_size_speed() -> None:
            r = self._guarded(
                "gate_sizing_for_speed",
                lambda: sizing.gate_sizing_for_speed(design))
            if r is not None:
                self._log(status, "speed sizing: %s" % r)

        def do_electrical() -> None:
            for _round in range(cfg.electrical_rounds):
                accepted = 0
                if cfg.use_migration:
                    r = self._guarded("circuit_migration",
                                      lambda: migration.run(design))
                    if r is not None:
                        accepted += r.accepted
                        self._log(status, "migration: %s" % r)
                if cfg.use_cloning:
                    r = self._guarded("cloning",
                                      lambda: cloning.run(design))
                    if r is not None:
                        accepted += r.accepted
                        self._log(status, "cloning: %s" % r)
                if cfg.use_buffering:
                    r = self._guarded("buffer_insertion",
                                      lambda: buffering.run(design))
                    if r is not None:
                        accepted += r.accepted
                        self._log(status, "buffering: %s" % r)
                if accepted == 0 or design.timing.worst_slack() >= 0:
                    break

        def do_pinswap() -> None:
            r = self._guarded("pin_swapping",
                              lambda: pinswap.run(design))
            if r is not None:
                self._log(status, "pin swapping: %s" % r)

        def do_late_area() -> None:
            for _ in range(5):  # recover until dry
                r = self._guarded(
                    "gate_sizing_for_area",
                    lambda: sizing.gate_sizing_for_area(
                        design, max_cells=2000))
                if r is None:
                    break
                self._log(status, "late area recovery: %s" % r)
                if r.accepted == 0:
                    break

        def level_steps(prev: int, now: int) -> list:
            """The post-partitioner schedule of one cut level.

            Deterministic in ``(prev, now)`` and the config alone, so a
            mid-level resume rebuilds the identical list from the
            snapshot's ``prev_status``/``status`` and re-enters at the
            recorded ``level_step``.
            """
            steps = []
            if cfg.use_reflow:
                steps.append(("reflow", do_reflow))
            if cfg.use_clock_scan_staging:
                steps.append(("clock_scan", do_clock_scan))
            if netweight is not None:
                steps.append(("net_weights", do_net_weights))
            steps.append(("discretize", do_discretize))
            if self._window(prev, now, 20, 30):
                steps.append(("size_area", do_size_area))
            if now > 30:
                steps.append(("size_speed", do_size_speed))
            if self._window(prev, now, *cfg.electrical_window):
                steps.append(("electrical", do_electrical))
            if now > 50 and cfg.use_pin_swapping:
                steps.append(("pinswap", do_pinswap))
            if now > 80:
                steps.append(("late_area", do_late_area))
            return steps

        # the guard admits an unfinished level too: the last cut can
        # reach status 100 and still owe its post-partitioner steps, so
        # a mid-level resume (level_step != 0) must re-enter the body
        while status < 100 or level_step != 0:
            if level_step == 0:
                prev_status = status
                target = status + cfg.step
                status = substrate("partitioner",
                                   lambda: partitioner.run_to(target))
                self._status = status
                if status == prev_status and partitioner.done:
                    break
                self._log(status,
                          "partitioner cut -> status %d" % status)
                level_step = 1
                if persist is not None:
                    persist.milestone(
                        snapshot_extras, force=True,
                        tag="level-%03d-partitioner" % status)
            steps = level_steps(prev_status, status)
            for index in range(level_step - 1, len(steps)):
                name, step = steps[index]
                step()
                level_step = index + 2
                if persist is not None:
                    persist.milestone(snapshot_extras, force=True,
                                      tag="level-%03d-%s"
                                      % (status, name))
            level_step = 0
            if persist is not None:
                persist.phase(status,
                              worst_slack=design.timing.worst_slack())
                persist.milestone(snapshot_extras)

        self._status = 100
        if persist is not None:
            # a snapshot right before the postlude: an interruption in
            # the output stage resumes here and replays it wholesale
            persist.milestone(snapshot_extras, force=True, tag="final")
        if not linked:
            sizing.link_cells(design)
            self._log(100, "late link (small design)")
        if cfg.use_clock_scan_staging:
            stages = self._guarded(
                "clock_scan",
                lambda: list(clock_scan.apply_for_status(design, 100)))
            for stage in stages or ():
                self._log(100, "clock/scan stage: %s" % stage)

        # Placement is final: drop electrical corrections that stopped
        # paying for themselves, then recover drive area once more.
        r = self._guarded("redundancy_cleanup",
                          lambda: RedundancyCleanup().run(design))
        if r is not None:
            self._log(100, "redundancy cleanup: %s" % r)
        r = self._guarded(
            "gate_sizing_for_area",
            lambda: sizing.gate_sizing_for_area(design, max_cells=2000))
        if r is not None:
            self._log(100, "final area recovery: %s" % r)

        # Output stage of Figure 5: detailed placement on exact legal
        # locations, then routing.
        leg = substrate("legalizer", lambda: legalize_rows(design))
        if leg is not None:
            self._log(100, "legalized (%d placed, %d failed)"
                      % (leg.placed, leg.failed))
        design.check()
        self._log(100, "invariants ok (post-legalization)")
        if cfg.use_detailed_placement:
            accepted = self._guarded(
                "detailed_placement",
                lambda: DetailedPlaceOpt(design, legal_mode=True,
                                         seed=cfg.seed).run())
            if accepted is not None:
                self._log(100, "detailed placement: %d moves" % accepted)
        # recover what legalization displacement cost, without moving
        # anything: drive and pin assignment only
        r = self._guarded("gate_sizing_for_speed",
                          lambda: sizing.gate_sizing_for_speed(design))
        if r is not None:
            self._log(100, "post-legalization speed sizing: %s" % r)
        if cfg.use_pin_swapping:
            r = self._guarded("pin_swapping",
                              lambda: pinswap.run(design))
            if r is not None:
                self._log(100, "post-legalization pin swapping: %s" % r)
        if cfg.use_buffering:
            # electrical correction on the legal placement; any new
            # buffers are legalized incrementally around existing cells
            def _buffer_legal():
                before_names = {c.name for c in design.netlist.cells()}
                r = buffering.run(design)
                new_cells = [c for c in design.netlist.cells()
                             if c.name not in before_names]
                if new_cells:
                    legalize_rows(design, cells=new_cells,
                                  respect_existing=True)
                return r, len(new_cells)

            out = self._guarded("buffer_insertion", _buffer_legal)
            if out is not None:
                self._log(100, "post-legalization buffering: %s (%d new)"
                          % out)
            design.check()
            self._log(100, "invariants ok (post-legalization buffering)")
        router = GlobalRouter(design)
        routing = self._traced("routing", "substrate", router.route)
        self._log(100, "routed: overflow %.1f" % routing.total_overflow)
        if cfg.use_in_footprint_sizing:
            r = self._guarded(
                "in_footprint_sizing",
                lambda: sizing.in_footprint_sizing(design))
            if r is not None:
                self._log(100, "in-footprint sizing: %s" % r)
        if cfg.use_power_recovery:
            from repro.transforms import PowerRecovery
            r = self._guarded("power_recovery",
                              lambda: PowerRecovery().run(design))
            if r is not None:
                self._log(100, "power recovery: %s" % r)
        if cfg.use_hold_fix:
            from repro.transforms import HoldFix
            r = self._guarded("hold_fix",
                              lambda: HoldFix().run(design))
            if r is not None:
                self._log(100, "hold fixing: %s" % r)

        if self.runner is not None:
            for line in self.runner.health_lines():
                self._log(100, "health: %s" % line)

        if tracer is not None:
            tracer.end(flow_span)
        report = snapshot(
            design, "TPS", cuts=cut_metrics(router),
            routable=routing.routable,
            # a resumed run's cpu_seconds covers every process segment,
            # not just this one (elapsed.json carries the dead ones)
            cpu_seconds=(persist.elapsed_seconds()
                         if persist is not None
                         else time.perf_counter() - started),
            iterations=1, trace=list(self.trace),
            guard=self.runner, tracer=tracer,
            run_dir=persist.rundir.path if persist is not None else None,
            resumed=persist.resumed if persist is not None else False)
        if persist is not None:
            persist.finish(report_state(report))
        return report

    @staticmethod
    def _window(prev: int, status: int, lo: int, hi: int) -> bool:
        """True if (prev, status] overlaps the open window (lo, hi).

        Status advances in discrete jumps, so the paper's ``lo < status
        < hi`` conditions are evaluated against the interval the flow
        just traversed — a window is never skipped over.
        """
        return status > lo and prev < hi
