"""Flow result reporting (the columns of Table 1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.design import Design
from repro.routing import CutMetrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.guard.runner import GuardedRunner, TransformHealth
    from repro.obs import CutTimeline, Tracer


@dataclass(frozen=True)
class TraceEvent:
    """One structured flow-narration event.

    ``status`` is the cut status the event happened at (None for
    flows, like SPR, that have no cut status).  :meth:`render` is the
    historical string form, so anything that printed the old
    ``List[str]`` trace keeps working through ``trace_lines()``.
    """

    message: str
    status: Optional[int] = None

    def render(self) -> str:
        if self.status is None:
            return self.message
        return "status %3d: %s" % (self.status, self.message)

    def to_state(self) -> list:
        return [self.status, self.message]

    @classmethod
    def from_state(cls, state) -> "TraceEvent":
        if isinstance(state, str):  # pre-obs snapshots stored strings
            return cls(message=state)
        return cls(status=state[0], message=state[1])


@dataclass
class FlowReport:
    """Everything Table 1 reports about one flow run, plus extras."""

    flow: str
    design_name: str
    icells: int
    cell_area: float
    worst_slack: float
    total_negative_slack: float
    cycle_time: float
    wirelength: float
    cuts: Optional[CutMetrics] = None
    routable: bool = False
    cpu_seconds: float = 0.0
    iterations: int = 1
    trace: List[TraceEvent] = field(default_factory=list)
    #: span records of the run (``repro.obs``), when tracing was on
    spans: List[dict] = field(default_factory=list)
    #: per-transform guarded-execution health (empty when unguarded)
    health: Dict[str, "TransformHealth"] = field(default_factory=dict)
    #: transforms quarantined during the run
    quarantined: List[str] = field(default_factory=list)
    #: wall-clock spent in the guard machinery (checkpoints, invariant
    #: checks, rollbacks) — the measurable guard overhead
    guard_seconds: float = 0.0
    #: run directory of a durable (persisted) run, if any
    run_dir: Optional[str] = None
    #: whether this run continued from an on-disk snapshot
    resumed: bool = False

    @property
    def total_failures(self) -> int:
        return sum(h.failures for h in self.health.values())

    @property
    def total_rollbacks(self) -> int:
        return sum(h.rollbacks for h in self.health.values())

    def health_lines(self) -> List[str]:
        """One guarded-execution summary line per transform."""
        return [self.health[name].summary()
                for name in sorted(self.health)]

    def trace_lines(self) -> List[str]:
        """The trace rendered as the historical string lines."""
        return [event.render() for event in self.trace]

    def timeline(self) -> "CutTimeline":
        """The per-cut-status aggregation of this run's spans."""
        from repro.obs import CutTimeline
        return CutTimeline.from_records(self.spans)

    @property
    def slack_fraction_of_cycle(self) -> float:
        return self.worst_slack / self.cycle_time

    @staticmethod
    def cycle_time_improvement(spr: "FlowReport",
                               tps: "FlowReport") -> float:
        """The paper's "% cycle time impr." column.

        Improvement of achievable cycle time: the slack delta relative
        to the constraint cycle.
        """
        return 100.0 * (tps.worst_slack - spr.worst_slack) / spr.cycle_time

    def table_row(self) -> str:
        cuts = self.cuts.row() if self.cuts else "-"
        return "%-6s %-5s %7d %8.0f %9.1f  %s" % (
            self.design_name, self.flow, self.icells, self.cell_area,
            self.worst_slack, cuts)


def snapshot(design: Design, flow: str,
             cuts: Optional[CutMetrics] = None,
             routable: bool = False,
             cpu_seconds: float = 0.0,
             iterations: int = 1,
             trace: Optional[List[TraceEvent]] = None,
             guard: Optional["GuardedRunner"] = None,
             tracer: Optional["Tracer"] = None,
             run_dir: Optional[str] = None,
             resumed: bool = False) -> FlowReport:
    """Capture a design's current metrics into a FlowReport."""
    return FlowReport(
        flow=flow,
        design_name=design.netlist.name,
        icells=design.icell_count(),
        cell_area=design.total_cell_area(),
        worst_slack=design.timing.worst_slack(),
        total_negative_slack=design.timing.total_negative_slack(),
        cycle_time=design.constraints.cycle_time,
        wirelength=design.total_wirelength(),
        cuts=cuts,
        routable=routable,
        cpu_seconds=cpu_seconds,
        iterations=iterations,
        trace=trace or [],
        spans=tracer.records() if tracer is not None else [],
        health=dict(guard.health) if guard is not None else {},
        quarantined=guard.quarantined if guard is not None else [],
        guard_seconds=guard.guard_seconds if guard is not None else 0.0,
        run_dir=run_dir,
        resumed=resumed,
    )


def report_state(report: FlowReport) -> dict:
    """The deterministic, JSON-serializable view of a FlowReport.

    Written to a run directory's ``report.json``; the CI resume smoke
    job compares these dicts between an interrupted-and-resumed run and
    an uninterrupted one, so only fields that are functions of the
    final design state belong here — never wall-clock times.
    """
    state = {
        "flow": report.flow,
        "design_name": report.design_name,
        "icells": report.icells,
        "cell_area": report.cell_area,
        "worst_slack": report.worst_slack,
        "total_negative_slack": report.total_negative_slack,
        "cycle_time": report.cycle_time,
        "wirelength": report.wirelength,
        "routable": report.routable,
        "iterations": report.iterations,
        "quarantined": list(report.quarantined),
    }
    if report.cuts is not None:
        state["cuts"] = {
            "horizontal_peak": report.cuts.horizontal_peak,
            "horizontal_avg": report.cuts.horizontal_avg,
            "vertical_peak": report.cuts.vertical_peak,
            "vertical_avg": report.cuts.vertical_avg,
        }
    return state
