"""Fiduccia–Mattheyses bipartition refinement.

Single-vertex moves with bucketed gains, a balance window, and
roll-back to the best prefix of the move sequence.  Ties on first-order
gain are broken with a Krishnamurthy-style second-order ("look-ahead")
gain [4]: prefer moves that bring additional nets within one move of
leaving the cut.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.partition.hypergraph import Hypergraph


@dataclass
class FMResult:
    """Outcome of FM refinement."""

    sides: List[int]
    cut: float
    passes: int
    moves_applied: int


def cut_size(graph: Hypergraph, sides: Sequence[int]) -> float:
    """Total weight of nets spanning both sides."""
    total = 0.0
    for net, w in zip(graph.nets, graph.net_weights):
        seen0 = seen1 = False
        for v in net:
            if sides[v] == 0:
                seen0 = True
            else:
                seen1 = True
            if seen0 and seen1:
                total += w
                break
    return total


def _balance_bounds(graph: Hypergraph, target_fraction: float,
                    tolerance: float) -> Tuple[float, float]:
    total = graph.total_weight
    target = total * target_fraction
    slop = total * tolerance
    return max(0.0, target - slop), min(total, target + slop)


class _FMPass:
    """One FM pass: move every free vertex at most once, keep the best
    prefix."""

    def __init__(self, graph: Hypergraph, sides: List[int],
                 lo: float, hi: float, rng: random.Random,
                 lookahead: bool = True) -> None:
        self.graph = graph
        self.sides = sides
        self.lo, self.hi = lo, hi
        self.rng = rng
        self.lookahead = lookahead
        self.incidence = graph.vertex_nets()
        self.counts = [[0, 0] for _ in graph.nets]
        for ni, net in enumerate(graph.nets):
            for v in net:
                self.counts[ni][sides[v]] += 1
        self.locked = [False] * graph.num_vertices
        for v in graph.fixed:
            self.locked[v] = True
        self.gain: Dict[int, float] = {}
        for v in graph.free_vertices():
            self.gain[v] = self._initial_gain(v)
        self.heap: List[Tuple[float, float, int, int]] = []
        self.counter = itertools.count()
        for v, g in self.gain.items():
            self._push(v)
        self.side_weight = [0.0, 0.0]
        for v in range(graph.num_vertices):
            self.side_weight[sides[v]] += graph.vertex_weights[v]

    def _initial_gain(self, v: int) -> float:
        s = self.sides[v]
        t = 1 - s
        g = 0.0
        for ni in self.incidence[v]:
            w = self.graph.net_weights[ni]
            if self.counts[ni][s] == 1:
                g += w
            if self.counts[ni][t] == 0:
                g -= w
        return g

    def _lookahead_gain(self, v: int) -> float:
        """Second-order gain: nets one extra move away from uncutting."""
        if not self.lookahead:
            return 0.0
        s = self.sides[v]
        g2 = 0.0
        for ni in self.incidence[v]:
            if self.counts[ni][s] == 2:
                g2 += self.graph.net_weights[ni]
        return g2

    def _push(self, v: int) -> None:
        heapq.heappush(self.heap, (
            -self.gain[v], -self._lookahead_gain(v),
            next(self.counter), v))

    def _pop_best(self) -> Optional[int]:
        """Best unlocked, balance-feasible move (lazy heap)."""
        deferred = []
        chosen = None
        while self.heap:
            negg, _negg2, _n, v = heapq.heappop(self.heap)
            if self.locked[v]:
                continue
            if -negg != self.gain[v]:
                continue  # stale entry; a fresh one exists
            s = self.sides[v]
            w = self.graph.vertex_weights[v]
            new0 = self.side_weight[0] + (w if s == 1 else -w)
            if self.lo <= new0 <= self.hi:
                chosen = v
                break
            deferred.append((negg, _negg2, _n, v))
        for item in deferred:
            heapq.heappush(self.heap, item)
        return chosen

    def _apply(self, v: int) -> None:
        s = self.sides[v]
        t = 1 - s
        w_v = self.graph.vertex_weights[v]
        self.locked[v] = True
        for ni in self.incidence[v]:
            w = self.graph.net_weights[ni]
            net = self.graph.nets[ni]
            # Before the move (standard FM delta rules):
            if self.counts[ni][t] == 0:
                for u in net:
                    if not self.locked[u]:
                        self.gain[u] += w
                        self._push(u)
            elif self.counts[ni][t] == 1:
                for u in net:
                    if self.sides[u] == t and not self.locked[u]:
                        self.gain[u] -= w
                        self._push(u)
            self.counts[ni][s] -= 1
            self.counts[ni][t] += 1
            # After the move:
            if self.counts[ni][s] == 0:
                for u in net:
                    if not self.locked[u]:
                        self.gain[u] -= w
                        self._push(u)
            elif self.counts[ni][s] == 1:
                for u in net:
                    if self.sides[u] == s and not self.locked[u]:
                        self.gain[u] += w
                        self._push(u)
        self.sides[v] = t
        self.side_weight[s] -= w_v
        self.side_weight[t] += w_v

    def run(self) -> Tuple[float, int]:
        """Execute the pass; returns (total_gain_of_best_prefix, moves)."""
        sequence: List[int] = []
        cumulative = 0.0
        best_gain = 0.0
        best_len = 0
        while True:
            v = self._pop_best()
            if v is None:
                break
            cumulative += self.gain[v]
            self._apply(v)
            sequence.append(v)
            if cumulative > best_gain + 1e-12:
                best_gain = cumulative
                best_len = len(sequence)
        # Roll back moves beyond the best prefix.
        for v in reversed(sequence[best_len:]):
            s = self.sides[v]
            t = 1 - s
            self.sides[v] = t
            w_v = self.graph.vertex_weights[v]
            self.side_weight[s] -= w_v
            self.side_weight[t] += w_v
        return best_gain, best_len


def fm_bipartition(graph: Hypergraph,
                   initial_sides: Optional[Sequence[int]] = None,
                   target_fraction: float = 0.5,
                   tolerance: float = 0.1,
                   max_passes: int = 8,
                   seed: int = 0,
                   lookahead: bool = True) -> FMResult:
    """Refine (or create) a bipartition with repeated FM passes.

    ``target_fraction`` is the desired share of total vertex weight on
    side 0; ``tolerance`` the allowed deviation as a fraction of total
    weight.  Fixed vertices never move but count toward balance and
    net cut states.
    """
    rng = random.Random(seed)
    n = graph.num_vertices
    if initial_sides is None:
        sides = _random_balanced(graph, target_fraction, rng)
    else:
        if len(initial_sides) != n:
            raise ValueError("initial_sides length mismatch")
        sides = list(initial_sides)
    for v, side in graph.fixed.items():
        sides[v] = side

    lo, hi = _balance_bounds(graph, target_fraction, tolerance)
    passes = 0
    total_moves = 0
    for _ in range(max_passes):
        fm = _FMPass(graph, sides, lo, hi, rng, lookahead=lookahead)
        gain, moves = fm.run()
        passes += 1
        total_moves += moves
        if gain <= 1e-12:
            break
    return FMResult(sides=sides, cut=cut_size(graph, sides),
                    passes=passes, moves_applied=total_moves)


def _random_balanced(graph: Hypergraph, target_fraction: float,
                     rng: random.Random) -> List[int]:
    """Random initial sides hitting the target weight split."""
    sides = [1] * graph.num_vertices
    weight0 = 0.0
    target = graph.total_weight * target_fraction
    for v, side in graph.fixed.items():
        sides[v] = side
        if side == 0:
            weight0 += graph.vertex_weights[v]
    order = graph.free_vertices()
    rng.shuffle(order)
    for v in order:
        if weight0 < target:
            sides[v] = 0
            weight0 += graph.vertex_weights[v]
    return sides
