"""Multi-level bipartitioning (Alpert/Karypis style [2, 13]).

Coarsen by heavy-edge matching until the graph is small, bipartition
the coarsest graph, then uncoarsen — projecting sides down and running
FM refinement at every level.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.partition.fm import FMResult, fm_bipartition
from repro.partition.hypergraph import Hypergraph

#: Stop coarsening below this many vertices.
_COARSE_LIMIT = 60
#: Give up coarsening when a level shrinks less than this factor.
_MIN_SHRINK = 0.9


def _heavy_edge_matching(graph: Hypergraph,
                         rng: random.Random) -> List[int]:
    """Greedy matching by clique-model connectivity weight.

    Returns ``match[v]`` = partner vertex (or v itself).  Fixed
    vertices never merge (they must keep their identity for terminal
    projection).
    """
    n = graph.num_vertices
    match = list(range(n))
    matched = [False] * n
    for v in graph.fixed:
        matched[v] = True

    # Connectivity weights via small-net clique expansion.
    neighbor_weight: List[Dict[int, float]] = [dict() for _ in range(n)]
    for net, w in zip(graph.nets, graph.net_weights):
        members = [v for v in set(net)]
        k = len(members)
        if k < 2 or k > 12:  # huge nets carry no matching signal
            continue
        share = w / (k - 1)
        for i, u in enumerate(members):
            for x in members[i + 1:]:
                neighbor_weight[u][x] = neighbor_weight[u].get(x, 0.0) + share
                neighbor_weight[x][u] = neighbor_weight[x].get(u, 0.0) + share

    order = graph.free_vertices()
    rng.shuffle(order)
    for v in order:
        if matched[v]:
            continue
        best, best_w = -1, 0.0
        for u, w in neighbor_weight[v].items():
            if not matched[u] and u != v and w > best_w:
                best, best_w = u, w
        if best >= 0:
            match[v] = best
            match[best] = v
            matched[v] = matched[best] = True
        # unmatched vertices stay singleton this round
    return match


def _coarsen(graph: Hypergraph,
             rng: random.Random) -> Tuple[Hypergraph, List[int]]:
    """One coarsening level; returns (coarse graph, fine->coarse map)."""
    match = _heavy_edge_matching(graph, rng)
    cmap: List[int] = [-1] * graph.num_vertices
    weights: List[float] = []
    fixed: Dict[int, int] = {}
    for v in range(graph.num_vertices):
        if cmap[v] >= 0:
            continue
        u = match[v]
        idx = len(weights)
        cmap[v] = idx
        w = graph.vertex_weights[v]
        if u != v and cmap[u] < 0:
            cmap[u] = idx
            w += graph.vertex_weights[u]
        weights.append(w)
        if v in graph.fixed:
            fixed[idx] = graph.fixed[v]
    nets: List[List[int]] = []
    net_weights: List[float] = []
    seen_nets: Dict[Tuple[int, ...], int] = {}
    for net, w in zip(graph.nets, graph.net_weights):
        coarse = tuple(sorted({cmap[v] for v in net}))
        if len(coarse) < 2:
            continue
        if coarse in seen_nets:
            net_weights[seen_nets[coarse]] += w
        else:
            seen_nets[coarse] = len(nets)
            nets.append(list(coarse))
            net_weights.append(w)
    return Hypergraph(weights, nets, net_weights, fixed), cmap


def multilevel_bipartition(graph: Hypergraph,
                           target_fraction: float = 0.5,
                           tolerance: float = 0.1,
                           seed: int = 0,
                           lookahead: bool = True) -> FMResult:
    """Bipartition via coarsen / initial-cut / refine-on-uncoarsen."""
    rng = random.Random(seed)
    levels: List[Tuple[Hypergraph, List[int]]] = []
    current = graph
    while (current.num_vertices > _COARSE_LIMIT
           and len(current.free_vertices()) > _COARSE_LIMIT):
        coarse, cmap = _coarsen(current, rng)
        if coarse.num_vertices >= current.num_vertices * _MIN_SHRINK:
            break
        levels.append((current, cmap))
        current = coarse

    result = fm_bipartition(current, target_fraction=target_fraction,
                            tolerance=tolerance, seed=seed,
                            lookahead=lookahead)
    sides = result.sides
    while levels:
        fine, cmap = levels.pop()
        fine_sides = [sides[cmap[v]] for v in range(fine.num_vertices)]
        result = fm_bipartition(fine, initial_sides=fine_sides,
                                target_fraction=target_fraction,
                                tolerance=tolerance, seed=seed,
                                lookahead=lookahead)
        sides = result.sides
    return result
