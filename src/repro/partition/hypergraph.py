"""A weighted hypergraph with optional fixed-side vertices."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Hypergraph:
    """Vertices 0..n-1 with weights; nets are vertex index lists.

    ``fixed`` pins a vertex to side 0 or 1 (terminal projection uses
    this to represent connections leaving the region being cut).
    """

    vertex_weights: List[float]
    nets: List[List[int]]
    net_weights: Optional[List[float]] = None
    fixed: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.net_weights is None:
            self.net_weights = [1.0] * len(self.nets)
        if len(self.net_weights) != len(self.nets):
            raise ValueError("net_weights length mismatch")
        n = self.num_vertices
        for net in self.nets:
            for v in net:
                if not (0 <= v < n):
                    raise ValueError("net references vertex %d of %d" % (v, n))
        for v, side in self.fixed.items():
            if side not in (0, 1):
                raise ValueError("fixed side must be 0/1")
            if not (0 <= v < n):
                raise ValueError("fixed vertex %d out of range" % v)

    @property
    def num_vertices(self) -> int:
        return len(self.vertex_weights)

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    @property
    def total_weight(self) -> float:
        return sum(self.vertex_weights)

    def free_vertices(self) -> List[int]:
        return [v for v in range(self.num_vertices) if v not in self.fixed]

    def vertex_nets(self) -> List[List[int]]:
        """For each vertex, the indices of nets containing it."""
        incidence: List[List[int]] = [[] for _ in range(self.num_vertices)]
        for ni, net in enumerate(self.nets):
            for v in set(net):
                incidence[v].append(ni)
        return incidence

    def movable_weight(self) -> float:
        return sum(self.vertex_weights[v] for v in self.free_vertices())
