"""Min-cut hypergraph partitioning substrate.

The Partitioner placement transform is built on multi-level
bipartitioning [2, 13] with Fiduccia–Mattheyses refinement and
Krishnamurthy look-ahead gains [4].  The substrate works on an
abstract ``Hypergraph`` so the placement layer can encode movable
cells, fixed terminals (terminal projection) and net weights uniformly.
"""

from repro.partition.hypergraph import Hypergraph
from repro.partition.fm import FMResult, fm_bipartition, cut_size
from repro.partition.multilevel import multilevel_bipartition

__all__ = [
    "Hypergraph",
    "FMResult",
    "fm_bipartition",
    "cut_size",
    "multilevel_bipartition",
]
