"""Random combinational logic with Rent-style locality.

Gates are created in topological order; each input connects to a net
drawn from a sliding window of recently created nets (locality bias —
this is what gives synthetic netlists a Rent exponent below 1) or,
with small probability, from anywhere earlier (global nets).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.library import Library
from repro.netlist import Netlist
from repro.netlist.net import Net

#: Gate type mix: (type name, relative probability).
DEFAULT_MIX: Sequence[Tuple[str, float]] = (
    ("INV", 0.14),
    ("BUF", 0.03),
    ("NAND2", 0.20),
    ("NOR2", 0.13),
    ("NAND3", 0.09),
    ("NOR3", 0.05),
    ("NAND4", 0.03),
    ("AND2", 0.06),
    ("OR2", 0.06),
    ("AOI21", 0.08),
    ("OAI21", 0.05),
    ("XOR2", 0.04),
    ("XNOR2", 0.02),
    ("MUX2", 0.02),
)

_MAX_FANOUT = 8
_LOCALITY_WINDOW = 40
_GLOBAL_PROB = 0.06


def _pick_type(rng: random.Random,
               mix: Sequence[Tuple[str, float]]) -> str:
    total = sum(w for _n, w in mix)
    r = rng.random() * total
    for name, w in mix:
        r -= w
        if r <= 0:
            return name
    return mix[-1][0]


def comb_cloud(netlist: Netlist, library: Library, n_gates: int,
               input_nets: Sequence[Net], rng: random.Random,
               prefix: str = "g",
               mix: Sequence[Tuple[str, float]] = DEFAULT_MIX,
               ) -> List[Net]:
    """Grow a combinational cloud fed by ``input_nets``.

    Returns the cloud's *open* nets (driven, with no sinks yet) —
    the caller hooks them to registers or output ports.
    """
    if not input_nets:
        raise ValueError("comb_cloud needs at least one input net")
    pool: List[Net] = list(input_nets)
    fanout: Dict[str, int] = {n.name: len(n.sinks()) for n in pool}
    open_nets: Dict[str, Net] = {}

    for i in range(n_gates):
        type_name = _pick_type(rng, mix)
        gate = netlist.add_cell(
            netlist.unique_name("%s_%s" % (prefix, type_name.lower())),
            library.smallest(type_name))
        for pin in gate.input_pins():
            net = _draw_net(pool, fanout, rng)
            netlist.connect(pin, net)
            fanout[net.name] += 1
            open_nets.pop(net.name, None)
            if fanout[net.name] >= _MAX_FANOUT:
                _remove_from_pool(pool, net)
        out = netlist.add_net(netlist.unique_name("%s_n" % prefix))
        netlist.connect(gate.output_pin(), out)
        pool.append(out)
        fanout[out.name] = 0
        open_nets[out.name] = out

    return list(open_nets.values())


def _draw_net(pool: List[Net], fanout: Dict[str, int],
              rng: random.Random) -> Net:
    if rng.random() < _GLOBAL_PROB or len(pool) <= _LOCALITY_WINDOW:
        return rng.choice(pool)
    window = pool[-_LOCALITY_WINDOW:]
    return rng.choice(window)


def _remove_from_pool(pool: List[Net], net: Net) -> None:
    try:
        pool.remove(net)
    except ValueError:
        pass


def random_logic(name: str, library: Library, n_gates: int,
                 n_inputs: int = 16, n_outputs: int = 16,
                 seed: int = 0) -> Netlist:
    """A standalone combinational design: PIs -> cloud -> POs.

    Ports are created unplaced; ``make_design``/``size_die`` assigns
    boundary positions once the die is known.
    """
    rng = random.Random(seed)
    netlist = Netlist(name)
    input_nets = []
    for i in range(n_inputs):
        port = netlist.add_input_port("pi%d" % i)
        net = netlist.add_net("pin%d" % i)
        netlist.connect(port.pin("Z"), net)
        input_nets.append(net)
    open_nets = comb_cloud(netlist, library, n_gates, input_nets, rng)
    _tie_outputs(netlist, open_nets, n_outputs, rng)
    return netlist


def _tie_outputs(netlist: Netlist, open_nets: List[Net],
                 n_outputs: int, rng: random.Random) -> None:
    """Connect open nets (or random driven nets) to output ports."""
    chosen = list(open_nets)
    rng.shuffle(chosen)
    if len(chosen) > n_outputs:
        # Tie extra open nets to output ports too: dangling logic would
        # be unconstrained in timing.  Prefer n_outputs "official"
        # ports plus sinks for the remainder.
        n_outputs = len(chosen)
    for i, net in enumerate(chosen):
        port = netlist.add_output_port(netlist.unique_name("po%d" % i))
        netlist.connect(port.pin("A"), net)
