"""Turning a netlist into a constrained ``Design`` on a sized die."""

from __future__ import annotations

import math
from typing import List, Optional

from repro.design import Design
from repro.geometry import Point, Rect
from repro.image import Blockage
from repro.library import Library, WireParasitics
from repro.library.types import ROW_HEIGHT
from repro.netlist import Netlist
from repro.timing import DelayMode, TimingConstraints


def size_die(netlist: Netlist, target_utilization: float = 0.6,
             blockage_area: float = 0.0) -> Rect:
    """A square die sized for the netlist's cell area.

    ``target_utilization`` is the intended *overall* fill rate (the
    paper's images leave room for wiring); the side snaps up to a
    whole number of rows.
    """
    area = netlist.total_cell_area() + blockage_area
    if area <= 0:
        area = 100.0
    side = math.sqrt(area / target_utilization)
    side = math.ceil(side / ROW_HEIGHT) * ROW_HEIGHT
    return Rect(0.0, 0.0, side, side)


def place_ports_on_boundary(netlist: Netlist, die: Rect) -> None:
    """Spread unplaced ports around the die boundary.

    Inputs go on the left/bottom edges, outputs on the right/top —
    the "primary IO port assignments" of the paper's floorplanning
    constraints.
    """
    ins = [p for p in netlist.ports()
           if p.position is None and p.output_pins()]
    outs = [p for p in netlist.ports()
            if p.position is None and p.input_pins()]

    def spread(ports: List, edges: List) -> None:
        if not ports:
            return
        per_edge = math.ceil(len(ports) / len(edges))
        i = 0
        for edge in edges:
            chunk = ports[i:i + per_edge]
            i += per_edge
            for k, port in enumerate(chunk):
                t = (k + 1) / (len(chunk) + 1)
                netlist.move_cell(port, edge(t))

    spread(ins, [
        lambda t: Point(die.xlo, die.ylo + t * die.height),
        lambda t: Point(die.xlo + t * die.width, die.ylo),
    ])
    spread(outs, [
        lambda t: Point(die.xhi, die.ylo + t * die.height),
        lambda t: Point(die.xlo + t * die.width, die.yhi),
    ])


def make_design(netlist: Netlist, library: Library, cycle_time: float,
                target_utilization: float = 0.5,
                growth_allowance: float = 2.2,
                with_blockage: bool = False,
                parasitics: Optional[WireParasitics] = None,
                mode: DelayMode = DelayMode.GAIN,
                seed: int = 0,
                core: str = "object") -> Design:
    """Size a die, place ports, and wrap everything in a ``Design``.

    The die is sized for the area the netlist will have *after*
    gain-based sizing — generator netlists are minimum-size, and
    discretization grows them by roughly ``growth_allowance`` — so that
    ``target_utilization`` describes the finished design.

    ``with_blockage`` reserves a datapath-macro corner of the die
    (about 1/16 of its area), reproducing the "Area in BIN_2 blocked by
    custom datapath" situation of Figure 1.
    """
    effective_util = target_utilization / max(growth_allowance, 1.0)
    blockages: List[Blockage] = []
    blockage_area = 0.0
    if with_blockage:
        probe = size_die(netlist, effective_util)
        span = probe.width / 4.0
        blockage_area = span * span
    die = size_die(netlist, effective_util,
                   blockage_area=blockage_area)
    if with_blockage:
        span = die.width / 4.0
        blockages.append(Blockage(
            Rect(die.xhi - span, die.yhi - span, die.xhi, die.yhi),
            name="datapath_macro", wiring_factor=0.6))
    place_ports_on_boundary(netlist, die)
    constraints = TimingConstraints(cycle_time=cycle_time)
    return Design(netlist, library, die, constraints,
                  blockages=blockages, parasitics=parasitics,
                  target_utilization=0.9, mode=mode, seed=seed,
                  core=core)
