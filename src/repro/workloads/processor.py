"""Synthetic "processor partition" designs.

Structure mirrors what the paper's five mainframe-processor partitions
exercise: pipeline register banks with combinational clouds between
them, one clock domain distributed to every register (clock buffers are
*not* pre-placed — the clock optimization transform inserts them), a
scan chain stitched through the scan registers, boundary I/O, and a
datapath blockage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.library import Library
from repro.netlist import Netlist
from repro.netlist.cell import Cell
from repro.netlist.net import Net
from repro.workloads.random_logic import comb_cloud


@dataclass
class ProcessorParams:
    """Knobs of the processor-partition generator."""

    name: str = "proc"
    n_stages: int = 3
    regs_per_stage: int = 24
    gates_per_stage: int = 300
    n_inputs: int = 24
    n_outputs: int = 24
    scan_fraction: float = 0.5
    n_scan_chains: int = 1
    seed: int = 0

    @property
    def approx_cells(self) -> int:
        return (self.n_stages * self.gates_per_stage
                + (self.n_stages + 1) * self.regs_per_stage)


def processor_partition(params: ProcessorParams,
                        library: Library) -> Netlist:
    """Build a pipelined sequential netlist from ``params``."""
    rng = random.Random(params.seed)
    netlist = Netlist(params.name)

    clk_port = netlist.add_input_port("clk")
    clk_net = netlist.add_net("clk_net", is_clock=True)
    netlist.connect(clk_port.pin("Z"), clk_net)

    input_nets: List[Net] = []
    for i in range(params.n_inputs):
        port = netlist.add_input_port("pi%d" % i)
        net = netlist.add_net("pinet%d" % i)
        netlist.connect(port.pin("Z"), net)
        input_nets.append(net)

    scan_regs: List[Cell] = []
    stage_inputs = input_nets
    for stage in range(params.n_stages + 1):
        regs = _register_bank(netlist, library, params, stage,
                              stage_inputs, clk_net, rng, scan_regs)
        q_nets = []
        for reg in regs:
            qn = netlist.add_net(netlist.unique_name("q_s%d" % stage))
            netlist.connect(reg.pin("Q"), qn)
            q_nets.append(qn)
        if stage < params.n_stages:
            stage_inputs = comb_cloud(
                netlist, library, params.gates_per_stage, q_nets, rng,
                prefix="s%d" % stage)
            if not stage_inputs:
                stage_inputs = q_nets
        else:
            stage_inputs = q_nets

    # Final stage Q nets drive output ports.
    for i, net in enumerate(stage_inputs):
        port = netlist.add_output_port(netlist.unique_name("po%d" % i))
        netlist.connect(port.pin("A"), net)

    chains = max(1, params.n_scan_chains)
    for k in range(chains):
        _stitch_scan_chain(netlist, scan_regs[k::chains], rng,
                           suffix="" if chains == 1 else "_%d" % k)
    _tie_dangling(netlist)
    return netlist


def _tie_dangling(netlist: Netlist) -> None:
    """Give every driven-but-unread net an output port.

    Dangling cones would be timing-unconstrained; real partitions
    export such signals at the partition boundary.
    """
    for net in netlist.nets():
        if net.is_clock or net.is_scan:
            continue
        if net.driver() is not None and not net.sinks():
            port = netlist.add_output_port(netlist.unique_name("po_t"))
            netlist.connect(port.pin("A"), net)


def _register_bank(netlist: Netlist, library: Library,
                   params: ProcessorParams, stage: int,
                   d_nets: Sequence[Net], clk_net: Net,
                   rng: random.Random,
                   scan_regs: List[Cell]) -> List[Cell]:
    """One bank of registers capturing ``d_nets``."""
    regs = []
    for i in range(params.regs_per_stage):
        scan = rng.random() < params.scan_fraction
        type_name = "SDFF" if scan else "DFF"
        reg = netlist.add_cell(
            netlist.unique_name("ff_s%d_%d" % (stage, i)),
            library.smallest(type_name))
        netlist.connect(reg.pin("CK"), clk_net)
        d_src = d_nets[i % len(d_nets)] if d_nets else None
        if d_src is not None:
            netlist.connect(reg.pin("D"), d_src)
        regs.append(reg)
        if scan:
            scan_regs.append(reg)
    return regs


def _stitch_scan_chain(netlist: Netlist, scan_regs: List[Cell],
                       rng: random.Random, suffix: str = "") -> None:
    """Connect SI pins in a (deliberately arbitrary) chain order.

    The initial order is random — scan reordering after placement is
    exactly the optimization the paper's transform performs.  Nets
    whose only sinks are scan pins are marked ``is_scan``.
    """
    if not scan_regs:
        return
    order = list(scan_regs)
    rng.shuffle(order)
    scan_in = netlist.add_input_port("scan_in" + suffix)
    si_net = netlist.add_net("scan_net_in" + suffix, is_scan=True)
    netlist.connect(scan_in.pin("Z"), si_net)
    netlist.connect(order[0].pin("SI"), si_net)
    for prev, cur in zip(order, order[1:]):
        qn = prev.pin("Q").net
        if qn is None:
            qn = netlist.add_net(netlist.unique_name("scan_q"))
            netlist.connect(prev.pin("Q"), qn)
        netlist.connect(cur.pin("SI"), qn)
    last_q = order[-1].pin("Q").net
    scan_out = netlist.add_output_port("scan_out" + suffix)
    if last_q is not None:
        netlist.connect(scan_out.pin("A"), last_q)
    refresh_scan_flags(netlist)


def refresh_scan_flags(netlist: Netlist) -> None:
    """Mark nets whose sinks are exclusively scan pins as scan nets."""
    for net in netlist.nets():
        sinks = net.sinks()
        if sinks and all(p.is_scan for p in sinks):
            net.is_scan = True
