"""Random unmapped logic: AIGs for the synthesis front-end."""

from __future__ import annotations

import random
from typing import List

from repro.synth.aig import Aig, Lit, lit_not


def random_aig(n_inputs: int = 8, n_nodes: int = 120,
               n_outputs: int = 8, seed: int = 0) -> Aig:
    """A random combinational AIG with local structure.

    Operations mix AND/OR/XOR/MUX (all lowered to AND-INV); operands
    are drawn with a recency bias so the graph has depth and reuse.
    """
    rng = random.Random(seed)
    aig = Aig()
    signals: List[Lit] = [aig.add_input("i%d" % k)
                          for k in range(n_inputs)]

    def draw() -> Lit:
        window = signals[-24:] if len(signals) > 24 else signals
        s = rng.choice(window)
        return lit_not(s) if rng.random() < 0.3 else s

    while aig.num_ands < n_nodes:
        op = rng.random()
        if op < 0.4:
            out = aig.add_and(draw(), draw())
        elif op < 0.7:
            out = aig.add_or(draw(), draw())
        elif op < 0.85:
            out = aig.add_xor(draw(), draw())
        else:
            out = aig.add_mux(draw(), draw(), draw())
        if out not in (0, 1):
            signals.append(out)

    pool = [s for s in signals[n_inputs:]] or signals
    rng.shuffle(pool)
    for k in range(n_outputs):
        aig.add_output("o%d" % k, pool[k % len(pool)])
    return aig
