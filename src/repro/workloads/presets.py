"""Des1..Des5: the paper's five processor partitions, scaled.

Table 1 lists partitions of 12k-40k icells.  A pure-Python flow cannot
run 40k cells through two full flows in benchmark time, so the presets
reproduce the *relative* sizes at a configurable scale (default ~1/12);
the experiment harness reports the scale it ran at.
"""

from __future__ import annotations

from typing import Dict

from repro.design import Design
from repro.library import Library
from repro.timing import DelayMode
from repro.workloads.build import make_design
from repro.workloads.processor import ProcessorParams, processor_partition

#: Benchmarks run these at BENCH_SCALE; cycle_time is calibrated at
#: that scale so the SPR baseline lands mildly negative, mirroring
#: Table 1's aggressively-tuned partitions.
BENCH_SCALE = 0.35

#: (paper icells, stages, regs/stage, gates/stage, inputs, cycle_time)
#: gates/stage tuned so approx cells track the paper's relative sizes.
DES_PRESETS: Dict[str, Dict] = {
    "Des1": dict(paper_icells=18622, n_stages=3, regs_per_stage=22,
                 gates_per_stage=440, n_inputs=24, cycle_time=1630.0,
                 seed=101),
    "Des2": dict(paper_icells=25927, n_stages=4, regs_per_stage=24,
                 gates_per_stage=480, n_inputs=28, cycle_time=2150.0,
                 seed=202),
    "Des3": dict(paper_icells=39734, n_stages=4, regs_per_stage=30,
                 gates_per_stage=740, n_inputs=32, cycle_time=3970.0,
                 seed=303),
    "Des4": dict(paper_icells=21584, n_stages=3, regs_per_stage=24,
                 gates_per_stage=520, n_inputs=24, cycle_time=1660.0,
                 seed=404),
    "Des5": dict(paper_icells=14780, n_stages=2, regs_per_stage=20,
                 gates_per_stage=500, n_inputs=20, cycle_time=2260.0,
                 seed=505),
}


def des_params(name: str, scale: float = 1.0) -> ProcessorParams:
    """Generator parameters for a Des preset at the given scale."""
    try:
        preset = DES_PRESETS[name]
    except KeyError:
        raise KeyError("unknown preset %r (Des1..Des5)" % name)
    return ProcessorParams(
        name=name,
        n_stages=preset["n_stages"],
        regs_per_stage=max(4, round(preset["regs_per_stage"] * scale)),
        gates_per_stage=max(20, round(preset["gates_per_stage"] * scale)),
        n_inputs=preset["n_inputs"],
        n_outputs=preset["n_inputs"],
        seed=preset["seed"],
    )


def build_des_design(name: str, library: Library, scale: float = 1.0,
                     cycle_time: float = None,
                     with_blockage: bool = True,
                     mode: DelayMode = DelayMode.GAIN,
                     core: str = "object") -> Design:
    """Generate a Des preset netlist and wrap it in a Design."""
    params = des_params(name, scale)
    netlist = processor_partition(params, library)
    if cycle_time is None:
        cycle_time = DES_PRESETS[name]["cycle_time"]
    return make_design(netlist, library, cycle_time,
                       with_blockage=with_blockage, mode=mode,
                       seed=DES_PRESETS[name]["seed"],
                       core=core)
