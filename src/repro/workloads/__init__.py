"""Synthetic workload generation.

The paper evaluates on five partitions of a mainframe processor —
proprietary netlists we substitute with seeded synthetic equivalents:
Rent-rule-flavoured random logic clouds between register banks, a
clock domain, a scan chain, boundary I/O and a datapath blockage
(see DESIGN.md, "Substitutions").
"""

from repro.workloads.random_logic import comb_cloud, random_logic
from repro.workloads.processor import ProcessorParams, processor_partition
from repro.workloads.presets import DES_PRESETS, build_des_design, des_params
from repro.workloads.build import make_design, size_die
from repro.workloads.unmapped import random_aig

__all__ = [
    "comb_cloud",
    "random_logic",
    "ProcessorParams",
    "processor_partition",
    "DES_PRESETS",
    "des_params",
    "build_des_design",
    "make_design",
    "size_die",
    "random_aig",
]
