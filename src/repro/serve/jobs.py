"""The fleet's job table: a journaled, lease-fenced, multi-process store.

Every state change of every job is one record in
``STATE_DIR/jobs.jsonl``, written through the same CRC-wrapped,
torn-tail-recovering :class:`repro.persist.journal.Journal` the flow
run directories use.  What PR 5 kept as one server's private table is
now a **multi-host contract**: any number of processes — the HTTP
server's pool, standalone ``python -m repro worker`` agents on other
hosts — attach to the same state dir, serialize their writes through
an ``fcntl`` file lock, and refresh their in-memory view from the
journal tail before every mutation.  The journal is the single source
of truth; the lock makes its sequence numbers a total order.

Scheduling is built on **leases with fencing tokens**:

* ``claim_next`` journals a ``lease`` record carrying a per-job,
  monotonically increasing token, and stamps the token into the job's
  run directory (``fence.json``) so the flow runner itself can detect
  a superseded lease mid-run.  The lease is time-bounded: it stays
  live only while the holder's heartbeat file
  (:mod:`repro.serve.lease`) is younger than the TTL *and lists the
  job* — a crashed-and-restarted worker reusing the same id does not
  keep an orphaned lease alive.
* ``finish`` and ``requeue`` must present the job's *current* token.
  A stale token — a zombie worker revived after its lease expired and
  its job moved on — is rejected, and the rejection itself is
  journaled as a ``fenced`` record, so a double-commit is structurally
  impossible and auditable.
* ``reap_expired`` is the fleet's failure detector: any process may
  run it; it requeues jobs whose holder went silent (with exponential
  backoff and a per-job retry budget) or fails them once the budget
  is spent.

Record types: ``submit`` (job id + canonical spec), ``lease`` (claim
with token/attempt/ttl), ``requeue`` (back in line, with cause:
``crash`` / ``lease-expired`` / ``release``), ``finish`` (terminal,
with the worker's exit code), ``fenced`` (a rejected stale write).
All job-state counting happens while *applying* records, so a
replayed table is indistinguishable from a live one.  The only
exceptions are the admission-control counters ``jobs_rejected`` and
``jobs_throttled``: refusals never enter the journal (journaling
under overload is exactly the wrong moment to add fsyncs), so those
two totals are **per-process**, not fleet-wide.
"""

from __future__ import annotations

import copy
import fcntl
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.obs.hist import LatencyHistogram
from repro.persist.journal import Journal, JournalError
from repro.serve.lease import (
    DEFAULT_BACKOFF_BASE,
    DEFAULT_BACKOFF_CAP,
    DEFAULT_LEASE_TTL,
    backoff_delay,
    live_workers,
    read_heartbeat_docs,
    write_fence,
)
from repro.serve.spec import JobSpecError, normalize_spec

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: states a job never leaves
TERMINAL_STATES = (DONE, FAILED, CANCELLED)

#: requeue causes that count as a resume (a worker died holding it)
CRASH_CAUSES = ("crash", "lease-expired")


class QueueFull(Exception):
    """Admission control refused the job: the queue is at capacity.

    ``retry_after`` is the client hint (seconds) the HTTP layer turns
    into a ``Retry-After`` header on its 429 response.
    """

    def __init__(self, depth: int, cap: int,
                 retry_after: float = 2.0) -> None:
        super().__init__("queue is full (%d/%d queued); retry in %.0fs"
                         % (depth, cap, retry_after))
        self.depth = depth
        self.cap = cap
        self.retry_after = retry_after


@dataclass
class Job:
    """One submitted flow run and its scheduling history."""

    job_id: str
    spec: dict
    state: str = QUEUED
    #: leases granted for this job (1 = never crashed)
    attempts: int = 0
    #: crash/kill recoveries (attempts that were resumes)
    resumes: int = 0
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    finished_at: Optional[float] = None
    #: exit code of the last finished worker process
    last_exit: Optional[int] = None
    #: fencing token of the newest lease (0 = never leased)
    token: int = 0
    #: holder of the current/last lease
    worker: Optional[str] = None
    #: wall time the current lease was granted
    leased_at: float = 0.0
    #: seconds the current lease survives without a heartbeat
    lease_ttl: float = DEFAULT_LEASE_TTL
    #: earliest wall time the job may be leased again (retry backoff)
    not_before: float = 0.0
    #: wall time the job last (re)entered the queue — submit or
    #: requeue; the start of the current submit→lease wait
    queued_at: float = 0.0

    @property
    def priority(self) -> int:
        """Higher runs first; FIFO within a priority (spec key)."""
        return int(self.spec.get("priority", 0))

    @property
    def queue(self) -> str:
        """The queue class workers filter on (spec key)."""
        return str(self.spec.get("queue", "default"))

    def max_attempts(self, default: int) -> int:
        """Leases allowed before the job fails instead of retrying.

        The spec's ``retries`` is the *transient-crash retry budget* —
        re-attempts after worker deaths — so the ceiling is one fresh
        attempt plus that many retries.  Without it, the store-wide
        default applies.
        """
        retries = self.spec.get("retries")
        if retries is None:
            return default
        return int(retries) + 1

    def summary(self) -> dict:
        """The JSON the status endpoints serve."""
        return {
            "job_id": self.job_id,
            "state": self.state,
            "flow": self.spec.get("flow"),
            "design": self.spec.get("design"),
            "queue": self.queue,
            "priority": self.priority,
            "attempts": self.attempts,
            "resumes": self.resumes,
            "worker": self.worker if self.state == RUNNING else None,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
        }


class JobStore:
    """The shared job table: journal + file lock on one state dir.

    ``state_dir`` is the fleet's durable identity::

        STATE_DIR/
          jobs.jsonl      journal of every job state change
          jobs.lock       fcntl lock serializing journal writers
          workers/        one heartbeat file per live worker
          runs/<id>/      one repro.persist run directory per job

    Every mutation (and every query) runs under :meth:`_locked`:
    exclusive ``fcntl`` lock, refresh the journal tail (folding in
    records other processes appended), then act.  Appending a record
    and *applying* it are one unit — the apply path is exactly the
    replay path, so restart, refresh, and live operation cannot
    disagree.
    """

    def __init__(self, state_dir: str,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 default_max_attempts: int = 3,
                 queue_cap: int = 0,
                 backoff_base: float = DEFAULT_BACKOFF_BASE,
                 backoff_cap: float = DEFAULT_BACKOFF_CAP) -> None:
        self.state_dir = state_dir
        #: seconds a lease survives without a heartbeat renewal
        self.lease_ttl = lease_ttl
        #: lease ceiling for jobs whose spec sets no ``retries``
        self.default_max_attempts = max(1, default_max_attempts)
        #: queued jobs admitted before submit returns 429 (0 = no cap)
        self.queue_cap = max(0, queue_cap)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        os.makedirs(self.runs_dir, exist_ok=True)
        self._lock = threading.Lock()
        self._lockfile = open(self.lock_path, "a+")
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._next_id = 1
        #: monotonically increasing totals (never decremented)
        self._totals = {"submitted": 0, "done": 0, "failed": 0,
                        "cancelled": 0, "resumes": 0, "rejected": 0,
                        "throttled": 0, "expired": 0, "fenced": 0}
        #: fleet-wide latency histograms, rebuilt from the journal the
        #: same way the job table is (replay == live, so a restarted
        #: process reports the whole fleet's history, not its own)
        self.histograms: Dict[str, LatencyHistogram] = {
            "submit_to_lease": LatencyHistogram(),
            "job_run": LatencyHistogram(),
        }
        fcntl.flock(self._lockfile, fcntl.LOCK_EX)
        try:
            try:
                self.journal = Journal.open(self.journal_path)
            except JournalError:
                self.journal = Journal.create(self.journal_path)
            for record in self.journal:
                self._apply(record)
        finally:
            fcntl.flock(self._lockfile, fcntl.LOCK_UN)

    # -- paths ---------------------------------------------------------

    @property
    def journal_path(self) -> str:
        """The fleet's job-state journal file."""
        return os.path.join(self.state_dir, "jobs.jsonl")

    @property
    def lock_path(self) -> str:
        """The fcntl lock file serializing journal writers."""
        return os.path.join(self.state_dir, "jobs.lock")

    @property
    def runs_dir(self) -> str:
        """Parent directory of all per-job run directories."""
        return os.path.join(self.state_dir, "runs")

    def run_path(self, job_id: str) -> str:
        """The repro.persist run directory of one job."""
        return os.path.join(self.runs_dir, job_id)

    # -- the multi-process critical section ----------------------------

    @contextmanager
    def _locked(self):
        """Exclusive fleet-wide section, view refreshed on entry."""
        with self._lock:
            fcntl.flock(self._lockfile, fcntl.LOCK_EX)
            try:
                for record in self.journal.refresh():
                    self._apply(record)
                yield
            finally:
                fcntl.flock(self._lockfile, fcntl.LOCK_UN)

    def _append(self, type_: str, **fields) -> dict:
        """Journal one record and apply it (callers hold the lock)."""
        record = self.journal.append(type_, **fields)
        self._apply(record)
        return record

    def _apply(self, record: dict) -> None:
        """Fold one journal record into the table (replay == live)."""
        kind = record["type"]
        if kind == "submit":
            job = Job(job_id=record["job_id"],
                      spec=record["spec"],
                      submitted_at=record.get("at", 0.0),
                      queued_at=record.get("at", 0.0))
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
            self._totals["submitted"] += 1
            ordinal = _job_ordinal(job.job_id)
            self._next_id = max(self._next_id, ordinal + 1)
            return
        job = self._jobs.get(record.get("job_id"))
        if job is None:
            return
        if kind == "lease":
            at = record.get("at", 0.0)
            if at and job.queued_at:
                self.histograms["submit_to_lease"].observe(
                    max(0.0, at - job.queued_at))
            job.state = RUNNING
            job.worker = record.get("worker")
            job.token = record.get("token", job.token + 1)
            job.attempts = record.get("attempt", job.attempts + 1)
            job.leased_at = record.get("at", 0.0)
            job.lease_ttl = record.get("ttl", self.lease_ttl)
        elif kind == "requeue":
            job.state = QUEUED
            job.worker = None
            job.last_exit = record.get("exit")
            job.not_before = record.get("not_before", 0.0)
            # the queue wait restarts when the job becomes claimable
            # again, not when it got kicked back
            job.queued_at = job.not_before or record.get("at", 0.0)
            cause = record.get("cause")
            if cause is None:  # PR-5 records: exit None marked release
                cause = ("release" if record.get("exit") is None
                         else "crash")
            if cause in CRASH_CAUSES:
                job.resumes += 1
                self._totals["resumes"] += 1
            if cause == "lease-expired":
                self._totals["expired"] += 1
        elif kind == "finish":
            at = record.get("at")
            if job.state == RUNNING and at and job.leased_at:
                self.histograms["job_run"].observe(
                    max(0.0, at - job.leased_at))
            job.state = record["state"]
            job.error = record.get("error")
            job.finished_at = record.get("at")
            job.last_exit = record.get("exit")
            self._totals[record["state"]] += 1
        elif kind == "fenced":
            self._totals["fenced"] += 1

    # -- submission ----------------------------------------------------

    def submit(self, raw_spec: dict) -> Job:
        """Validate, admit, journal, and enqueue one job.

        Raises :class:`~repro.serve.spec.JobSpecError` on a malformed
        spec (counted in ``jobs_rejected``) and :class:`QueueFull`
        when admission control turns it away (``jobs_throttled``).
        """
        try:
            spec = normalize_spec(raw_spec)
        except JobSpecError:
            with self._locked():
                self._totals["rejected"] += 1
            raise
        with self._locked():
            if self.queue_cap:
                depth = sum(1 for job in self._jobs.values()
                            if job.state == QUEUED)
                if depth >= self.queue_cap:
                    self._totals["throttled"] += 1
                    raise QueueFull(depth, self.queue_cap)
            job_id = "job-%04d" % self._next_id
            self._next_id += 1
            self._append("submit", job_id=job_id, spec=spec,
                         at=time.time())
            return self._jobs[job_id]

    # -- leasing (called by pools and worker agents) --------------------

    def claim_next(self, worker: str = "local",
                   queues: Optional[Set[str]] = None,
                   now: Optional[float] = None) -> Optional[Job]:
        """Lease the best eligible queued job to ``worker``.

        Eligible: queued, in one of ``queues`` (None = any), and past
        its retry-backoff gate.  Highest priority wins; FIFO within a
        priority.  The journaled ``lease`` record carries the job's
        next fencing token, which is also stamped into the job's run
        directory (``fence.json``) while the lock is held.

        Returns a **detached snapshot** of the job, captured under the
        store lock: its ``token``/``attempts`` are this lease's, and a
        later foreign expire+re-lease cannot mutate them out from
        under the caller.  The worker presents ``job.token`` to
        :meth:`finish`/:meth:`requeue`, which re-resolve the live job
        by id.
        """
        with self._locked():
            moment = time.time() if now is None else now
            best: Optional[Job] = None
            for job_id in self._order:
                job = self._jobs[job_id]
                if job.state != QUEUED:
                    continue
                if queues is not None and job.queue not in queues:
                    continue
                if job.not_before > moment:
                    continue
                if best is None or job.priority > best.priority:
                    best = job
            if best is None:
                return None
            self._append("lease", job_id=best.job_id, worker=worker,
                         token=best.token + 1,
                         attempt=best.attempts + 1,
                         ttl=self.lease_ttl, at=moment)
            write_fence(self.run_path(best.job_id), best.token, worker)
            return copy.copy(best)

    def _fenced(self, job: Job, op: str, token: Optional[int],
                worker: Optional[str]) -> bool:
        """Validate a finish/requeue write; journal a rejection.

        A write is valid while the job is RUNNING and the presented
        token is its current lease's (or the write is administrative —
        ``token=None`` — against a job that holds no lease).  Anything
        else is a zombie: journaled as ``fenced``, never applied.
        """
        if job.state == RUNNING and token == job.token:
            return False
        if job.state == QUEUED and token is None:
            return False  # e.g. cancelling a job nobody holds
        self._append("fenced", job_id=job.job_id, op=op, token=token,
                     current=job.token, state=job.state,
                     worker=worker, at=time.time())
        return True

    def requeue(self, job: Job, exit_code: Optional[int] = None,
                token: Optional[int] = None, cause: str = "crash",
                worker: Optional[str] = None,
                now: Optional[float] = None) -> bool:
        """Put a job back in line; returns False if fenced off.

        Crash-class causes gate the next lease behind exponential
        backoff (``backoff_base * 2**resumes``, capped) and count a
        resume; ``release`` (graceful shutdown) does neither.
        """
        with self._locked():
            job = self._jobs[job.job_id]
            if self._fenced(job, "requeue", token, worker):
                return False
            moment = time.time() if now is None else now
            delay = (backoff_delay(job.resumes, self.backoff_base,
                                   self.backoff_cap)
                     if cause in CRASH_CAUSES else 0.0)
            self._append("requeue", job_id=job.job_id, exit=exit_code,
                         token=token, cause=cause,
                         not_before=moment + delay, at=moment)
            return True

    def release(self, job: Job, token: Optional[int] = None) -> bool:
        """Return a claimed job to the queue without counting a
        resume or a backoff gate (graceful shutdown path)."""
        return self.requeue(job, exit_code=None, token=token,
                            cause="release")

    def finish(self, job: Job, state: str,
               error: Optional[str] = None,
               exit_code: Optional[int] = None,
               token: Optional[int] = None,
               worker: Optional[str] = None) -> bool:
        """Move a job to a terminal state; returns False if fenced."""
        assert state in TERMINAL_STATES, state
        with self._locked():
            job = self._jobs[job.job_id]
            if job.state in TERMINAL_STATES:
                # terminal is forever: a late double-commit is fenced
                self._append("fenced", job_id=job.job_id, op="finish",
                             token=token, current=job.token,
                             state=job.state, worker=worker,
                             at=time.time())
                return False
            if self._fenced(job, "finish", token, worker):
                return False
            # exit rides in the record so replayed tables agree on it
            self._append("finish", job_id=job.job_id, state=state,
                         error=error, exit=exit_code, token=token,
                         at=time.time())
            return True

    # -- the failure detector -------------------------------------------

    def reap_expired(self, now: Optional[float] = None) -> List[Job]:
        """Requeue (or fail) every job whose lease went silent.

        A lease is live while its grant is younger than the TTL (grace
        for a worker that has not heartbeat-listed the job yet), or
        while its holder's heartbeat is fresh **and names the job** in
        its ``jobs`` list.  The cross-check matters for fixed
        ``--worker-id`` deployments: a crashed-and-restarted worker
        heartbeats the same id while knowing nothing about its old
        lease, so freshness alone would keep the orphaned job RUNNING
        forever.  Any process may reap — the journal's total order
        makes it idempotent: whoever appends first wins, and the
        loser's view refreshes before it acts.  Jobs past their retry
        budget are failed instead of requeued; the run directory still
        holds their snapshots for a post-mortem.  Returns the jobs
        acted on.
        """
        with self._locked():
            moment = time.time() if now is None else now
            beats = read_heartbeat_docs(self.state_dir)
            reaped: List[Job] = []
            for job_id in self._order:
                job = self._jobs[job_id]
                if job.state != RUNNING:
                    continue
                if moment - job.leased_at <= job.lease_ttl:
                    continue
                doc = beats.get(job.worker or "")
                if (doc is not None
                        and moment - doc["at"] <= job.lease_ttl
                        and job.job_id in doc["jobs"]):
                    continue
                reaped.append(job)
                if job.attempts >= job.max_attempts(
                        self.default_max_attempts):
                    self._append(
                        "finish", job_id=job.job_id, state=FAILED,
                        token=job.token, at=moment,
                        error="lease expired on final attempt %d/%d "
                              "(worker %s went silent)"
                              % (job.attempts,
                                 job.max_attempts(
                                     self.default_max_attempts),
                                 job.worker))
                else:
                    delay = backoff_delay(job.resumes,
                                          self.backoff_base,
                                          self.backoff_cap)
                    self._append("requeue", job_id=job.job_id,
                                 exit=None, token=job.token,
                                 cause="lease-expired",
                                 not_before=moment + delay, at=moment)
            return reaped

    # -- queries -------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        """The job with this id, or None (view refreshed)."""
        with self._locked():
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """All jobs, oldest first (view refreshed)."""
        with self._locked():
            return [self._jobs[job_id] for job_id in self._order]

    def in_state(self, *states: str) -> List[Job]:
        """All jobs currently in any of the given states."""
        with self._locked():
            return [self._jobs[job_id] for job_id in self._order
                    if self._jobs[job_id].state in states]

    def counters(self) -> Dict[str, int]:
        """Job accounting for the server's CounterRegistry and
        ``/metrics``: lifetime totals plus current fleet gauges.

        All totals are journal-derived (fleet-wide, replay-stable)
        except ``jobs_rejected`` and ``jobs_throttled``, which count
        this process's own admission refusals — refusals are never
        journaled, so a restarted server starts them at zero.
        """
        with self._locked():
            by_state: Dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            return {
                "jobs_submitted": self._totals["submitted"],
                "jobs_done": self._totals["done"],
                "jobs_failed": self._totals["failed"],
                "jobs_cancelled": self._totals["cancelled"],
                "jobs_rejected": self._totals["rejected"],
                "jobs_throttled": self._totals["throttled"],
                "job_resumes": self._totals["resumes"],
                "leases_expired": self._totals["expired"],
                "writes_fenced": self._totals["fenced"],
                "jobs_queued": by_state.get(QUEUED, 0),
                "jobs_running": by_state.get(RUNNING, 0),
                "leases_active": by_state.get(RUNNING, 0),
                "queue_cap": self.queue_cap,
                "workers_live": len(live_workers(self.state_dir,
                                                 self.lease_ttl)),
            }

    def close(self) -> None:
        """Release the lock file handle (tests on Windows-ish FS)."""
        try:
            self._lockfile.close()
        except OSError:
            pass


def _job_ordinal(job_id: str) -> int:
    """The numeric tail of a ``job-NNNN`` id (0 if foreign)."""
    try:
        return int(job_id.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        return 0
