"""The server's job table, journaled for restart survival.

Every state change of every job is one record in
``STATE_DIR/jobs.jsonl``, written through the same CRC-wrapped,
torn-tail-recovering :class:`repro.persist.journal.Journal` the flow
run directories use.  A restarted server replays the journal and gets
its job table back: terminal jobs keep their outcome, and anything
that was queued or running when the previous server died is requeued
— a running job's run directory is still on disk, so its next worker
*resumes* it from the last milestone snapshot rather than starting
over.

Record types: ``submit`` (job id + canonical spec), ``start`` (a
worker process was spawned, with its attempt ordinal), ``requeue``
(the worker died; the job goes back in line), ``finish`` (terminal:
``done`` / ``failed`` / ``cancelled``).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.persist.journal import Journal, JournalError
from repro.serve.spec import JobSpecError, normalize_spec

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: states a job never leaves
TERMINAL_STATES = (DONE, FAILED, CANCELLED)


@dataclass
class Job:
    """One submitted flow run and its scheduling history."""

    job_id: str
    spec: dict
    state: str = QUEUED
    #: worker processes spawned for this job (1 = never crashed)
    attempts: int = 0
    #: crash/kill recoveries (attempts that were resumes)
    resumes: int = 0
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    finished_at: Optional[float] = None
    #: exit code of the last finished worker process
    last_exit: Optional[int] = None

    def summary(self) -> dict:
        """The JSON the status endpoints serve."""
        return {
            "job_id": self.job_id,
            "state": self.state,
            "flow": self.spec.get("flow"),
            "design": self.spec.get("design"),
            "attempts": self.attempts,
            "resumes": self.resumes,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
        }


class JobStore:
    """Thread-safe job table backed by the server journal.

    ``state_dir`` is the server's durable identity::

        STATE_DIR/
          jobs.jsonl    journal of every job state change
          runs/<id>/    one repro.persist run directory per job

    All mutation goes through methods that journal first, then update
    the in-memory table under the lock — the same write-ahead
    discipline the flows themselves follow.
    """

    def __init__(self, state_dir: str) -> None:
        self.state_dir = state_dir
        os.makedirs(self.runs_dir, exist_ok=True)
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._next_id = 1
        #: monotonically increasing totals (never decremented)
        self._totals = {"submitted": 0, "done": 0, "failed": 0,
                        "cancelled": 0, "resumes": 0, "rejected": 0}
        try:
            self.journal = Journal.open(self.journal_path)
            self._replay()
        except JournalError:
            self.journal = Journal.create(self.journal_path)

    # -- paths ---------------------------------------------------------

    @property
    def journal_path(self) -> str:
        """The server's job-state journal file."""
        return os.path.join(self.state_dir, "jobs.jsonl")

    @property
    def runs_dir(self) -> str:
        """Parent directory of all per-job run directories."""
        return os.path.join(self.state_dir, "runs")

    def run_path(self, job_id: str) -> str:
        """The repro.persist run directory of one job."""
        return os.path.join(self.runs_dir, job_id)

    # -- journal replay ------------------------------------------------

    def _replay(self) -> None:
        """Rebuild the job table from the journal (server restart)."""
        for record in self.journal:
            kind = record["type"]
            if kind == "submit":
                job = Job(job_id=record["job_id"],
                          spec=record["spec"],
                          submitted_at=record.get("at", 0.0))
                self._jobs[job.job_id] = job
                self._order.append(job.job_id)
                self._totals["submitted"] += 1
                ordinal = _job_ordinal(job.job_id)
                self._next_id = max(self._next_id, ordinal + 1)
            elif kind == "start":
                job = self._jobs.get(record["job_id"])
                if job is not None:
                    job.state = RUNNING
                    job.attempts = record.get("attempt", job.attempts + 1)
            elif kind == "requeue":
                job = self._jobs.get(record["job_id"])
                if job is not None:
                    job.state = QUEUED
                    # exit=None marks a shutdown release, not a crash
                    if record.get("exit") is not None:
                        job.resumes += 1
                        self._totals["resumes"] += 1
            elif kind == "finish":
                job = self._jobs.get(record["job_id"])
                if job is not None:
                    job.state = record["state"]
                    job.error = record.get("error")
                    job.finished_at = record.get("at")
                    self._totals[record["state"]] += 1
        # a job mid-flight when the server died goes back in line; its
        # run dir (if any) makes the next attempt a resume
        for job in self._jobs.values():
            if job.state == RUNNING:
                job.state = QUEUED

    # -- submission ----------------------------------------------------

    def submit(self, raw_spec: dict) -> Job:
        """Validate, journal, and enqueue one job.

        Raises :class:`~repro.serve.spec.JobSpecError` on a malformed
        spec (counted in ``jobs_rejected``).
        """
        try:
            spec = normalize_spec(raw_spec)
        except JobSpecError:
            with self._lock:
                self._totals["rejected"] += 1
            raise
        with self._lock:
            job_id = "job-%04d" % self._next_id
            self._next_id += 1
            job = Job(job_id=job_id, spec=spec)
            self.journal.append("submit", job_id=job_id, spec=spec,
                                at=job.submitted_at)
            self._jobs[job_id] = job
            self._order.append(job_id)
            self._totals["submitted"] += 1
            return job

    # -- scheduling hooks (called by the pool) -------------------------

    def claim_next(self) -> Optional[Job]:
        """Pop the oldest queued job and mark it running (journaled)."""
        with self._lock:
            for job_id in self._order:
                job = self._jobs[job_id]
                if job.state == QUEUED:
                    job.state = RUNNING
                    job.attempts += 1
                    self.journal.append("start", job_id=job_id,
                                        attempt=job.attempts)
                    return job
            return None

    def requeue(self, job: Job, exit_code: Optional[int]) -> None:
        """Put a crashed job back in line for a resume attempt."""
        with self._lock:
            self.journal.append("requeue", job_id=job.job_id,
                                exit=exit_code)
            job.state = QUEUED
            job.last_exit = exit_code
            job.resumes += 1
            self._totals["resumes"] += 1

    def release(self, job: Job) -> None:
        """Return a claimed-but-never-run job to the queue, without
        counting a resume (graceful shutdown path)."""
        with self._lock:
            self.journal.append("requeue", job_id=job.job_id, exit=None)
            job.state = QUEUED

    def finish(self, job: Job, state: str,
               error: Optional[str] = None,
               exit_code: Optional[int] = None) -> None:
        """Move a job to a terminal state (journaled)."""
        assert state in TERMINAL_STATES, state
        with self._lock:
            job.finished_at = time.time()
            self.journal.append("finish", job_id=job.job_id,
                                state=state, error=error,
                                at=job.finished_at)
            job.state = state
            job.error = error
            job.last_exit = exit_code
            self._totals[state] += 1

    # -- queries -------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        """The job with this id, or None."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """All jobs, oldest first."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def in_state(self, *states: str) -> List[Job]:
        """All jobs currently in any of the given states."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order
                    if self._jobs[job_id].state in states]

    def counters(self) -> Dict[str, int]:
        """Job accounting for the server's CounterRegistry and
        ``/metrics``: lifetime totals plus current queue gauges."""
        with self._lock:
            by_state: Dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            return {
                "jobs_submitted": self._totals["submitted"],
                "jobs_done": self._totals["done"],
                "jobs_failed": self._totals["failed"],
                "jobs_cancelled": self._totals["cancelled"],
                "jobs_rejected": self._totals["rejected"],
                "job_resumes": self._totals["resumes"],
                "jobs_queued": by_state.get(QUEUED, 0),
                "jobs_running": by_state.get(RUNNING, 0),
            }


def _job_ordinal(job_id: str) -> int:
    """The numeric tail of a ``job-NNNN`` id (0 if foreign)."""
    try:
        return int(job_id.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        return 0
