"""Rendering the live counter registry as Prometheus text format.

Three sources feed ``/metrics``:

* the **server registry** — a :class:`repro.obs.CounterRegistry` over
  the job store and the worker pool, rendered as unlabeled
  ``repro_server_*`` / ``repro_pool_*`` series;
* the **worker sinks** — each job's ``metrics.json``
  (:mod:`repro.obs.sink`), rendered as per-job labeled series:
  the flow's own analyzer counters as
  ``repro_flow_<counter>{job=...,flow=...}`` plus span summaries
  (``repro_flow_spans_total``, ``repro_flow_span_seconds_total``,
  ``repro_flow_cut_status``);
* the **latency histograms** — the store's journal-derived
  submit→lease and job-run histograms plus the pool's lease→start
  one (:mod:`repro.obs.hist`), rendered as real Prometheus histogram
  families: ``repro_latency_<stage>_seconds_bucket`` (cumulative
  ``le`` buckets ending at ``+Inf``), ``_sum`` and ``_count``, so
  ``histogram_quantile()`` works on them unmodified.

Only the `Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ is
produced — one ``# TYPE`` header per metric family, label values
escaped, no client library required.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.hist import LatencyHistogram

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(raw: str) -> str:
    """A legal Prometheus metric-name fragment from a counter key."""
    name = _NAME_RE.sub("_", raw)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def escape_label(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return (str(value).replace("\\", r"\\")
            .replace('"', r'\"').replace("\n", r"\n"))


def _labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join('%s="%s"' % (metric_name(k), escape_label(v))
                     for k, v in sorted(labels.items()))
    return "{%s}" % inner


class _Family:
    """One metric family: a TYPE header plus its sample lines."""

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind
        self.samples: List[Tuple[str, float]] = []

    def add(self, labels: Dict[str, str], value) -> None:
        self.samples.append((_labels(labels), value))

    def lines(self) -> List[str]:
        out = ["# TYPE %s %s" % (self.name, self.kind)]
        for labels, value in self.samples:
            out.append("%s%s %s" % (self.name, labels, _format(value)))
        return out


def _format(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def histogram_lines(stage: str, hist: LatencyHistogram) -> List[str]:
    """One ``repro_latency_<stage>_seconds`` histogram family.

    The Prometheus histogram shape: cumulative ``_bucket`` samples
    labeled by upper bound ``le`` (ending at ``+Inf``), then ``_sum``
    and ``_count`` — the exact series ``histogram_quantile()`` wants.
    """
    name = "repro_latency_%s_seconds" % metric_name(stage)
    out = ["# TYPE %s histogram" % name]
    for bound, running in hist.cumulative():
        le = "+Inf" if bound == float("inf") else _format(bound)
        out.append('%s_bucket{le="%s"} %d' % (name, le, running))
    out.append("%s_sum %s" % (name, _format(hist.sum)))
    out.append("%s_count %d" % (name, hist.total))
    return out


def prometheus_metrics(server_counters: Dict[str, int],
                       sink_documents: Iterable[dict],
                       histograms: Optional[
                           Dict[str, LatencyHistogram]] = None) -> str:
    """The full ``/metrics`` payload as one text blob.

    ``server_counters`` is the registry snapshot (already flattened to
    ``prefix.key``); ``sink_documents`` are the per-job counter-sink
    documents (see :func:`repro.obs.read_sink`), whose ``labels``
    become Prometheus labels; ``histograms`` maps stage names to the
    serve latency histograms (rendered even when empty, so dashboards
    can rely on the series existing).
    """
    families: Dict[str, _Family] = {}

    def family(name: str, kind: str) -> _Family:
        if name not in families:
            families[name] = _Family(name, kind)
        return families[name]

    # registry keys arrive as "prefix.key" (server.jobs_done,
    # pool.workers_busy) and keep their prefix in the metric name
    for key in sorted(server_counters):
        name = "repro_%s" % metric_name(key)
        # lifetime totals are counters; the rest are point-in-time
        kind = ("counter" if key.split(".")[-1].endswith(
            ("_total", "spawned", "crashes", "kills", "submitted",
             "done", "failed", "cancelled", "rejected", "resumes",
             "throttled", "expired", "fenced"))
            else "gauge")
        family(name, kind).add({}, server_counters[key])

    for document in sink_documents:
        if not document:
            continue
        labels = dict(document.get("labels", {}))
        for key, value in sorted(document.get("counters", {}).items()):
            if isinstance(value, bool) or not isinstance(value, int):
                continue
            name = "repro_flow_%s" % metric_name(key)
            family(name, "counter").add(labels, value)
        spans = document.get("spans", {})
        family("repro_flow_spans_total", "counter").add(
            labels, spans.get("total", 0))
        family("repro_flow_span_seconds_total", "counter").add(
            labels, spans.get("seconds", 0.0))
        for kind_name, count in sorted(
                spans.get("by_kind", {}).items()):
            kind_labels = dict(labels)
            kind_labels["kind"] = kind_name
            family("repro_flow_spans_by_kind", "counter").add(
                kind_labels, count)
        family("repro_flow_cut_status", "gauge").add(
            labels, document.get("status", 0))
        family("repro_flow_finished", "gauge").add(
            labels, 1 if document.get("final") else 0)

    lines: List[str] = []
    for name in sorted(families):
        lines.extend(families[name].lines())
    for stage in sorted(histograms or {}):
        lines.extend(histogram_lines(stage, histograms[stage]))
    return "\n".join(lines) + "\n"
