"""A minimal stdlib client for the flow service HTTP API.

Used by ``python -m repro submit`` and the server test suite; thin on
purpose — every call is one HTTP request, JSON in, JSON out.  Two
classes of trouble are absorbed instead of raised immediately:

* **Transient connection errors** (refused, reset) retry with
  jittered exponential backoff.  Non-idempotent requests (anything
  with a body) retry only on *refused* — a refused connection never
  reached the server, so a duplicate submit is impossible; a reset
  mid-flight might have landed, so POSTs surface it.
* **429 (queue full)** honors the server's ``Retry-After`` header and
  retries within the same budget before raising; the final
  :class:`ServiceError` carries ``retry_after`` so callers can keep
  backing off on their own schedule.

Any other non-2xx response raises :class:`ServiceError` carrying the
server's ``error`` message.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Optional

from repro.serve.jobs import TERMINAL_STATES

#: default connection-retry budget (attempts beyond the first)
DEFAULT_RETRIES = 3
#: first backoff step (seconds); doubles per retry, jittered ±50%
DEFAULT_BACKOFF = 0.2


class ServiceError(Exception):
    """The server answered with an error status.

    ``retry_after`` is set (seconds) on 429 responses so callers can
    schedule their own resubmission.
    """

    def __init__(self, code: int, message: str,
                 retry_after: Optional[float] = None) -> None:
        super().__init__("HTTP %d: %s" % (code, message))
        self.code = code
        self.message = message
        self.retry_after = retry_after


def _jittered(delay: float) -> float:
    """±50% full jitter so a fleet of clients does not thunder."""
    return delay * (0.5 + random.random())


def request(base_url: str, path: str, payload: Optional[dict] = None,
            method: Optional[str] = None, timeout: float = 30.0,
            retries: int = DEFAULT_RETRIES,
            backoff: float = DEFAULT_BACKOFF):
    """One JSON request; returns the decoded body (str for text).

    ``retries`` bounds the extra attempts spent on refused/reset
    connections and on 429 backpressure; 0 fails fast.
    """
    url = base_url.rstrip("/") + path
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    attempt = 0
    while True:
        req = urllib.request.Request(
            url, data=data, headers=headers,
            method=method or ("POST" if payload is not None else "GET"))
        try:
            with urllib.request.urlopen(req, timeout=timeout) as response:
                body = response.read().decode()
                kind = response.headers.get("Content-Type", "")
        except urllib.error.HTTPError as exc:
            retry_after = _retry_after_seconds(exc)
            detail = exc.read().decode(errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except ValueError:
                pass
            if exc.code == 429 and attempt < retries:
                # honor the server's pacing, not our own schedule
                attempt += 1
                time.sleep(retry_after if retry_after is not None
                           else _jittered(backoff * 2 ** attempt))
                continue
            raise ServiceError(exc.code, detail,
                               retry_after=retry_after)
        except urllib.error.URLError as exc:
            if not _retryable(exc.reason, idempotent=data is None) \
                    or attempt >= retries:
                raise
            attempt += 1
            time.sleep(_jittered(backoff * 2 ** attempt))
            continue
        except ConnectionError as exc:
            if not _retryable(exc, idempotent=data is None) \
                    or attempt >= retries:
                raise
            attempt += 1
            time.sleep(_jittered(backoff * 2 ** attempt))
            continue
        if kind.startswith("application/json"):
            return json.loads(body)
        return body


def _retry_after_seconds(exc) -> Optional[float]:
    """The Retry-After header of an HTTP error, as seconds."""
    value = exc.headers.get("Retry-After") if exc.headers else None
    try:
        return float(value) if value is not None else None
    except ValueError:
        return None


def _retryable(reason, idempotent: bool) -> bool:
    """May this connection failure be retried safely?

    A refused connection never reached a server, so even a POST may
    retry.  A reset (or anything mid-flight) may have landed: only
    idempotent (body-less) requests retry those.
    """
    if isinstance(reason, ConnectionRefusedError):
        return True
    return idempotent and isinstance(reason, (ConnectionResetError,
                                              ConnectionError))


def submit(base_url: str, spec: dict,
           retries: int = DEFAULT_RETRIES) -> str:
    """Submit a job spec; returns the assigned job id."""
    return request(base_url, "/jobs", payload=spec,
                   retries=retries)["job_id"]


def status(base_url: str, job_id: str) -> dict:
    """One job's status summary (``GET /jobs/<id>``)."""
    return request(base_url, "/jobs/%s" % job_id)


def result(base_url: str, job_id: str) -> dict:
    """A finished job's report (``GET /jobs/<id>/result``)."""
    return request(base_url, "/jobs/%s/result" % job_id)


def metrics(base_url: str) -> str:
    """The Prometheus text payload of ``GET /metrics``."""
    return request(base_url, "/metrics")


def wait(base_url: str, job_id: str, timeout: float = 600.0,
         poll: float = 0.25, poll_cap: float = 5.0) -> dict:
    """Poll until the job reaches a terminal state; returns its
    status.  The poll interval starts at ``poll`` and doubles up to
    ``poll_cap`` — long jobs cost a handful of requests per minute,
    not a constant hammering.  Raises TimeoutError if the job does
    not settle in time."""
    deadline = time.monotonic() + timeout
    interval = max(0.01, poll)
    while True:
        state = status(base_url, job_id)
        if state["state"] in TERMINAL_STATES:
            return state
        if time.monotonic() >= deadline:
            raise TimeoutError("job %s still %s after %.0fs"
                               % (job_id, state["state"], timeout))
        time.sleep(min(interval, max(0.0,
                                     deadline - time.monotonic())))
        interval = min(poll_cap, interval * 2.0)
