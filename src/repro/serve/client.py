"""A minimal stdlib client for the flow service HTTP API.

Used by ``python -m repro submit`` and the server test suite; thin on
purpose — every call is one HTTP request, JSON in, JSON out, no
retries or sessions.  Any non-2xx response raises
:class:`ServiceError` carrying the server's ``error`` message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional

from repro.serve.jobs import TERMINAL_STATES


class ServiceError(Exception):
    """The server answered with an error status."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__("HTTP %d: %s" % (code, message))
        self.code = code
        self.message = message


def request(base_url: str, path: str, payload: Optional[dict] = None,
            method: Optional[str] = None, timeout: float = 30.0):
    """One JSON request; returns the decoded body (str for text)."""
    url = base_url.rstrip("/") + path
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(
        url, data=data, headers=headers,
        method=method or ("POST" if payload is not None else "GET"))
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            body = response.read().decode()
            kind = response.headers.get("Content-Type", "")
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode(errors="replace")
        try:
            detail = json.loads(detail).get("error", detail)
        except ValueError:
            pass
        raise ServiceError(exc.code, detail)
    if kind.startswith("application/json"):
        return json.loads(body)
    return body


def submit(base_url: str, spec: dict) -> str:
    """Submit a job spec; returns the assigned job id."""
    return request(base_url, "/jobs", payload=spec)["job_id"]


def status(base_url: str, job_id: str) -> dict:
    """One job's status summary (``GET /jobs/<id>``)."""
    return request(base_url, "/jobs/%s" % job_id)


def result(base_url: str, job_id: str) -> dict:
    """A finished job's report (``GET /jobs/<id>/result``)."""
    return request(base_url, "/jobs/%s/result" % job_id)


def metrics(base_url: str) -> str:
    """The Prometheus text payload of ``GET /metrics``."""
    return request(base_url, "/metrics")


def wait(base_url: str, job_id: str, timeout: float = 600.0,
         poll: float = 0.5) -> dict:
    """Poll until the job reaches a terminal state; returns its
    status.  Raises TimeoutError if it does not settle in time."""
    deadline = time.monotonic() + timeout
    while True:
        state = status(base_url, job_id)
        if state["state"] in TERMINAL_STATES:
            return state
        if time.monotonic() >= deadline:
            raise TimeoutError("job %s still %s after %.0fs"
                               % (job_id, state["state"], timeout))
        time.sleep(poll)
