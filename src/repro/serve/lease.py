"""Fleet primitives: worker identity, heartbeats, and retry backoff.

The multi-host contract of ``repro.serve`` (see ``docs/operations.md``
§9) is built from three small pieces, all living on the shared state
directory:

* **Leases** — time-bounded claims on jobs, journaled in
  ``jobs.jsonl`` with a monotonically increasing *fencing token* per
  job (see :class:`repro.serve.jobs.JobStore`).  A worker may only
  finish or requeue a job while it holds the job's current token; a
  zombie worker — one whose lease expired and whose job moved on —
  gets its late writes rejected, and the rejection is journaled.
* **Heartbeats** — each worker (the in-server pool and every
  standalone ``python -m repro worker`` agent) atomically rewrites one
  small JSON file under ``STATE_DIR/workers/`` every fraction of the
  lease TTL.  A lease is *live* while its holder's heartbeat is fresh
  **and lists the job**: the heartbeat's ``jobs`` field is the
  holder's claim of what it is actually running, so a worker that
  crashed and restarted under the same ``--worker-id`` (fresh
  heartbeat, no memory of the old lease) does not keep its orphaned
  job RUNNING forever.  A worker that is SIGKILLed, loses power, or is
  swapped out past the TTL simply stops writing, and the reaper
  requeues its jobs for resume elsewhere.  Heartbeats are deliberately
  **not** journaled — they are high-frequency liveness, not state
  transitions.
* **Run-dir fences** — the journal's fencing token is carried into
  each job's run directory as ``runs/<id>/fence.json``, written by
  ``claim_next`` under the store's exclusive lock.  The in-process
  flow runner re-reads it before every durable write (journal append,
  snapshot), so a zombie whose lease moved on aborts instead of
  mutating the run directory the new holder is resuming from.
* **Backoff** — a transiently crashed job is requeued with a
  ``not_before`` gate that grows exponentially with its resume count,
  so a job that keeps killing workers cannot monopolize the fleet
  while its retry budget drains toward quarantine.

Everything here is standard library only (``os``, ``json``,
``socket``); the cross-process mutual exclusion lives in the job
store's ``fcntl`` file lock, not here.
"""

from __future__ import annotations

import json
import os
import socket
import time
from typing import Dict, List, Optional

from repro.persist import io as storage

#: default seconds a lease survives without a heartbeat renewal
DEFAULT_LEASE_TTL = 30.0

#: default requeue backoff: base * 2**resumes, capped
DEFAULT_BACKOFF_BASE = 0.5
DEFAULT_BACKOFF_CAP = 30.0

WORKERS_DIR = "workers"


def worker_identity(kind: str) -> str:
    """A fleet-unique worker id: ``<kind>@<host>:<pid>``.

    Host + pid is unique across a fleet of machines sharing one state
    directory (two live processes on one host cannot share a pid);
    ``kind`` distinguishes the in-server pool from standalone agents
    in journals and heartbeat listings.
    """
    return "%s@%s:%d" % (kind, socket.gethostname(), os.getpid())


def backoff_delay(resumes: int, base: float = DEFAULT_BACKOFF_BASE,
                  cap: float = DEFAULT_BACKOFF_CAP) -> float:
    """Exponential requeue delay for a job's next attempt."""
    if base <= 0.0:
        return 0.0
    return min(cap, base * (2.0 ** max(0, resumes)))


def _safe_name(worker: str) -> str:
    """A filesystem-safe heartbeat filename for a worker id."""
    return "".join(ch if (ch.isalnum() or ch in "._-") else "_"
                   for ch in worker)


class Heartbeat:
    """One worker's liveness file, atomically rewritten on a cadence.

    The document is ``{"worker", "at", "pid", "host", "jobs"}`` —
    enough for the reaper to judge lease liveness and for ``/metrics``
    to gauge the live fleet.  ``write`` rate-limits itself to
    ``interval`` seconds unless forced, so callers may invoke it every
    scheduler tick.
    """

    def __init__(self, state_dir: str, worker: str,
                 interval: float = DEFAULT_LEASE_TTL / 4.0) -> None:
        self.worker = worker
        self.interval = interval
        self.path = os.path.join(state_dir, WORKERS_DIR,
                                 _safe_name(worker) + ".json")
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        self._last = 0.0

    def write(self, jobs: Optional[List[str]] = None,
              force: bool = False) -> bool:
        """Publish liveness; returns True if the file was rewritten."""
        now = time.monotonic()
        if not force and now - self._last < self.interval:
            return False
        self._last = now
        document = {
            "worker": self.worker,
            "at": time.time(),
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "jobs": list(jobs or []),
        }
        # fsync=False: a heartbeat is high-frequency liveness, not
        # state — atomicity matters (readers never see a torn file),
        # durability of the very last beat does not
        storage.atomic_write_json(
            self.path, document, fsync=False,
            tmp_suffix=".%d.tmp" % os.getpid())
        return True

    def remove(self) -> None:
        """Retire the worker: drop its heartbeat file (graceful exit)."""
        try:
            os.unlink(self.path)
        except OSError:
            pass


def read_heartbeat_docs(state_dir: str) -> Dict[str, dict]:
    """All workers' full heartbeat documents, by worker id.

    Each document carries at least ``at`` (wall time, float) and
    ``jobs`` (list of job ids the worker says it is running — the
    reaper cross-checks a lease against this, not just freshness).
    Partial or foreign files are skipped — a reader must tolerate a
    worker mid-rewrite (rewrites are atomic, but the directory may
    hold stray tmp files from a killed worker).
    """
    directory = os.path.join(state_dir, WORKERS_DIR)
    docs: Dict[str, dict] = {}
    try:
        names = os.listdir(directory)
    except OSError:
        return docs
    for name in names:
        if not name.endswith(".json"):
            continue
        try:
            with open(os.path.join(directory, name)) as stream:
                document = json.load(stream)
        except (OSError, ValueError):
            continue
        worker = document.get("worker")
        at = document.get("at")
        if isinstance(worker, str) and isinstance(at, (int, float)):
            document["at"] = float(at)
            if not isinstance(document.get("jobs"), list):
                document["jobs"] = []
            docs[worker] = document
    return docs


def read_heartbeats(state_dir: str) -> Dict[str, float]:
    """All workers' last-heartbeat wall times, by worker id."""
    return {worker: doc["at"]
            for worker, doc in read_heartbeat_docs(state_dir).items()}


def live_workers(state_dir: str, ttl: float,
                 now: Optional[float] = None) -> List[str]:
    """Worker ids whose heartbeat is younger than ``ttl`` seconds."""
    moment = time.time() if now is None else now
    return sorted(worker
                  for worker, at in read_heartbeats(state_dir).items()
                  if moment - at <= ttl)


# -- run-directory fences ----------------------------------------------

FENCE_FILE = "fence.json"


def write_fence(run_path: str, token: int, worker: str) -> None:
    """Stamp a run directory with its current lease's fencing token.

    Called by ``JobStore.claim_next`` *under the store's exclusive
    file lock*, which makes the fence single-writer: tokens only ever
    move forward, and a zombie holder never writes the fence at all —
    it only reads it (and loses).
    """
    os.makedirs(run_path, exist_ok=True)
    path = os.path.join(run_path, FENCE_FILE)
    storage.atomic_write_json(
        path, {"token": int(token), "worker": worker,
               "at": time.time()},
        tmp_suffix=".%d.tmp" % os.getpid())


def read_fence(run_path: str) -> int:
    """The run directory's current fencing token (0 if unfenced —
    e.g. a CLI ``--run-dir`` run that never went through a lease)."""
    try:
        with open(os.path.join(run_path, FENCE_FILE)) as stream:
            return int(json.load(stream)["token"])
    except (OSError, ValueError, KeyError, TypeError):
        return 0


def fence_guard(run_path: str, token: int):
    """A durable-write guard bound to one lease of one run directory.

    The returned callable re-reads the fence file and raises
    :class:`~repro.persist.rundir.RunFencedError` once the run has
    been re-leased under a newer token — ``FlowPersist`` calls it
    before every journal append and snapshot, so a zombie's flow
    aborts instead of corrupting the state its successor resumes from.
    """
    from repro.persist.rundir import RunFencedError

    def check() -> None:
        current = read_fence(run_path)
        if current and current != token:
            raise RunFencedError(
                "run %s is fenced: lease token moved %d -> %d"
                % (run_path, token, current))

    return check
