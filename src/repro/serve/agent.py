"""The standalone worker agent: one process, leasing from a state dir.

``python -m repro worker --state-dir DIR`` attaches to the same
shared state directory the HTTP server uses — or to one with no
server at all — and participates in the fleet purely through the
:class:`~repro.serve.jobs.JobStore` contract: heartbeat, reap expired
leases, lease a job, run it, settle it with the lease's fencing
token.  Workers on N hosts against one (shared-filesystem) state dir
are exactly N of these agents; the HTTP front end is only the
submission surface, never the scheduler of record.

The agent runs each flow **in-process** (unlike the server pool's
child-per-job): the agent process *is* the worker, so killing it —
``kill -9``, OOM, power loss — is the crash model the lease layer is
built for.  Its heartbeat thread dies with it, the lease goes silent,
any other agent's reaper requeues the job, and the next lease resumes
from the run directory's last milestone snapshot.  A *suspended*
agent (SIGSTOP, VM pause) whose lease expires becomes a zombie on
revival, fenced at **both** layers: its flow aborts at its next
durable write because the run directory's ``fence.json`` now carries
the successor's token (so it cannot corrupt the journal/snapshots the
resume depends on), and its late ``finish``/``requeue`` presents a
stale fencing token and is journaled as ``fenced``, never applied.

Failure taxonomy inside a live agent mirrors the pool's: exit-0 →
done; ``BAD_JOB_EXIT_CODE`` → failed fast; a raised exception or a
simulated-kill ``SystemExit`` → transient crash, requeued with
backoff against the job's retry budget.

SIGTERM/SIGINT drain gracefully: the current job finishes (it holds a
live lease), then the agent retires its heartbeat and exits.
"""

from __future__ import annotations

import signal
import sys
import threading
import time
import traceback
from typing import Optional, Set

from repro.persist import DIE_EXIT_CODE
from repro.serve.jobs import DONE, FAILED, Job, JobStore
from repro.serve.lease import Heartbeat, worker_identity
from repro.serve.worker import BAD_JOB_EXIT_CODE, run_job

#: idle poll period between claim attempts (seconds)
IDLE_POLL = 0.25


class WorkerAgent:
    """Lease → run → settle, forever (or for ``max_jobs`` jobs)."""

    def __init__(self, state_dir: str,
                 worker_id: Optional[str] = None,
                 queues: Optional[Set[str]] = None,
                 lease_ttl: Optional[float] = None,
                 max_attempts: Optional[int] = None,
                 poll: float = IDLE_POLL,
                 max_jobs: Optional[int] = None) -> None:
        self.store = JobStore(state_dir)
        if lease_ttl is not None:
            self.store.lease_ttl = lease_ttl
        if max_attempts is not None:
            self.store.default_max_attempts = max(1, max_attempts)
        self.queues = set(queues) if queues else None
        self.worker_id = worker_id or worker_identity("agent")
        self.heartbeat = Heartbeat(state_dir, self.worker_id,
                                   interval=self.store.lease_ttl / 4.0)
        self.poll = poll
        #: stop after this many settled jobs (None = run forever)
        self.max_jobs = max_jobs
        self.jobs_run = 0
        self._stop = threading.Event()
        self._current: Optional[str] = None
        self._hb_thread: Optional[threading.Thread] = None
        self._last_reap = 0.0

    # -- liveness -------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        """Publish liveness on a cadence, including mid-flow.

        This thread is the agent's pulse: it must keep beating while
        the main thread is deep inside a transform, because that is
        precisely when a lease would otherwise look dead.  It dies
        with the process — which is the point.
        """
        while not self._stop.is_set():
            jobs = [self._current] if self._current else []
            self.heartbeat.write(jobs=jobs, force=True)
            self._stop.wait(self.heartbeat.interval)

    def _reap(self) -> None:
        """Run the failure detector every TTL/4 seconds."""
        now = time.monotonic()
        if now - self._last_reap < self.store.lease_ttl / 4.0:
            return
        self._last_reap = now
        for job in self.store.reap_expired():
            print("reaped silent lease: %s (worker %s, attempt %d)"
                  % (job.job_id, job.worker or "?", job.attempts),
                  file=sys.stderr)

    # -- the work loop ---------------------------------------------------

    def stop(self) -> None:
        """Ask the agent to drain: finish the current job, then exit."""
        self._stop.set()

    def run_forever(self) -> int:
        """The agent main loop; returns a process exit code."""
        self.heartbeat.write(force=True)
        self._hb_thread = threading.Thread(target=self._heartbeat_loop,
                                           name="repro-agent-heartbeat",
                                           daemon=True)
        self._hb_thread.start()
        try:
            while not self._stop.is_set():
                self._reap()
                job = self.store.claim_next(worker=self.worker_id,
                                            queues=self.queues)
                if job is None:
                    self._stop.wait(self.poll)
                    continue
                self._run_one(job)
                self.jobs_run += 1
                if (self.max_jobs is not None
                        and self.jobs_run >= self.max_jobs):
                    break
        finally:
            self._stop.set()
            self.heartbeat.remove()
        return 0

    def _run_one(self, job: Job) -> None:
        """Execute one leased job in-process and settle it."""
        self._current = job.job_id
        self.heartbeat.write(jobs=[job.job_id], force=True)
        token = job.token
        try:
            code = run_job(job.job_id, job.spec,
                           self.store.run_path(job.job_id),
                           token=token)
        except SystemExit as exc:  # simulated kill points (exit 17)
            code = exc.code if isinstance(exc.code, int) else 1
        except Exception:
            traceback.print_exc()
            code = 1
        try:
            self._settle(job, code, token)
        finally:
            # keep the job heartbeat-listed until it is settled, so
            # the reaper's jobs cross-check never sees a gap
            self._current = None

    def _settle(self, job: Job, exit_code: int, token: int) -> None:
        """The pool's exit taxonomy, fenced by this lease's token."""
        if exit_code == 0:
            applied = self.store.finish(job, DONE, exit_code=0,
                                        token=token,
                                        worker=self.worker_id)
        elif exit_code == BAD_JOB_EXIT_CODE:
            applied = self.store.finish(
                job, FAILED, exit_code=exit_code, token=token,
                worker=self.worker_id,
                error="worker rejected the job (exit %d)" % exit_code)
        elif job.attempts >= job.max_attempts(
                self.store.default_max_attempts):
            applied = self.store.finish(
                job, FAILED, exit_code=exit_code, token=token,
                worker=self.worker_id,
                error="worker died (exit %d) on final attempt %d/%d"
                      % (exit_code, job.attempts,
                         job.max_attempts(
                             self.store.default_max_attempts)))
        else:
            applied = self.store.requeue(job, exit_code, token=token,
                                         cause="crash",
                                         worker=self.worker_id)
        if not applied:
            print("fenced: stale token %d for %s (lease moved on "
                  "while this agent was out)" % (token, job.job_id),
                  file=sys.stderr)


def install_drain_signals(agent: WorkerAgent) -> None:
    """SIGTERM/SIGINT → drain: finish the current job, then exit."""

    def _signalled(signum, frame):
        print("\nsignal %d: draining (current job finishes, no new "
              "leases)" % signum, file=sys.stderr)
        agent.stop()

    signal.signal(signal.SIGINT, _signalled)
    signal.signal(signal.SIGTERM, _signalled)


#: re-export for callers simulating kills
__all__ = ["WorkerAgent", "install_drain_signals", "DIE_EXIT_CODE",
           "IDLE_POLL"]
