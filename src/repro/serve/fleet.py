"""Fleet rollup: one report across every job in a serve state dir.

``python -m repro fleet-report STATE_DIR`` is the offline counterpart
of the live ``/metrics`` endpoint: it attaches to the fleet's state
dir (the same journal-replay path every server and worker uses, so
the view is exactly what a server would see), then folds three layers
into one document:

* **jobs** — the journal-derived job table: totals by state, attempts,
  resumes;
* **latency** — the journal-derived submit→lease and job-run
  histograms (:mod:`repro.obs.hist`), reported as count/sum/p50/p99
  per stage.  ``lease_to_start`` is per-process and never journaled,
  so it cannot appear here — the journal is the only offline source;
* **transforms** — every job's ``trace.jsonl`` rolled up through
  :mod:`repro.obs.analyze` and merged into one fleet-wide payoff
  table, plus each job's counter sink (``metrics.json``) summary.

Everything is read-only: attaching replays the journal (healing a torn
tail in memory, as any reader does) but mutates nothing.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.obs import read_sink
from repro.obs.analyze import (
    PayoffReport,
    PayoffRow,
    TraceNotFound,
    analyze_path,
)
from repro.serve.jobs import JobStore
from repro.serve.worker import SINK_FILE


def _merge_row(into: PayoffRow, row: PayoffRow) -> None:
    """Fold one job's payoff row into the fleet-wide row."""
    into.invocations += row.invocations
    into.accepts += row.accepts
    into.rejects += row.rejects
    into.seconds += row.seconds
    into.wns_gain += row.wns_gain
    into.tns_gain += row.tns_gain
    into.wirelength_gain += row.wirelength_gain
    for status in row.statuses:
        if status not in into.statuses:
            into.statuses.append(status)
    for key, value in row.counters.items():
        into.counters[key] = into.counters.get(key, 0) + value


def merge_reports(reports: List[PayoffReport]) -> List[PayoffRow]:
    """One fleet-wide payoff row per transform, summed across jobs."""
    merged: Dict[Tuple[str, str], PayoffRow] = {}
    order: List[Tuple[str, str]] = []
    for report in reports:
        for row in report.rows:
            key = (row.name, row.kind)
            into = merged.get(key)
            if into is None:
                into = merged[key] = PayoffRow(name=row.name,
                                               kind=row.kind)
                order.append(key)
            _merge_row(into, row)
    return [merged[k] for k in order]


def _job_entry(store: JobStore, job) -> Tuple[dict,
                                              Optional[PayoffReport]]:
    """One job's rollup line plus its analyzed trace (if traced)."""
    entry = job.summary()
    run_path = store.run_path(job.job_id)
    sink = read_sink(os.path.join(run_path, SINK_FILE))
    if sink is not None:
        entry["cut_status"] = sink.get("status")
        entry["sink_spans"] = sink.get("spans", {}).get("total")
        entry["sink_final"] = bool(sink.get("final"))
    report = None
    try:
        report = analyze_path(run_path)
    except TraceNotFound:
        pass
    if report is not None:
        entry["spans"] = report.span_count
        entry["transform_seconds"] = report.total_seconds
        if report.flow is not None:
            entry["flow_seconds"] = report.flow["seconds"]
            entry["wns_gain"] = report.flow["wns_gain"]
            entry["tns_gain"] = report.flow["tns_gain"]
            entry["wirelength_gain"] = report.flow["wirelength_gain"]
    return entry, report


def fleet_report(state_dir: str) -> dict:
    """The whole fleet rollup as one plain-JSON document."""
    store = JobStore(state_dir)
    try:
        jobs = store.jobs()
        by_state: Dict[str, int] = {}
        for job in jobs:
            by_state[job.state] = by_state.get(job.state, 0) + 1
        entries: List[dict] = []
        reports: List[PayoffReport] = []
        for job in jobs:
            entry, report = _job_entry(store, job)
            entries.append(entry)
            if report is not None:
                reports.append(report)
        rows = merge_reports(reports)
        rows.sort(key=lambda r: -r.seconds)
        return {
            "state_dir": os.path.abspath(state_dir),
            "jobs": {
                "total": len(jobs),
                "by_state": dict(sorted(by_state.items())),
                "attempts": sum(j.attempts for j in jobs),
                "resumes": sum(j.resumes for j in jobs),
            },
            "latency": {stage: hist.to_json()
                        for stage, hist in
                        sorted(store.histograms.items())},
            "traced_jobs": len(reports),
            "spans": sum(r.span_count for r in reports),
            "transforms": [row.to_json() for row in rows],
            "per_job": entries,
        }
    finally:
        store.close()


def fleet_lines(report: dict) -> List[str]:
    """A terse human-readable rendering of :func:`fleet_report`."""
    jobs = report["jobs"]
    states = ", ".join("%s=%d" % kv
                       for kv in jobs["by_state"].items()) or "none"
    out = [
        "state dir: %s" % report["state_dir"],
        "jobs: %d (%s); attempts=%d resumes=%d"
        % (jobs["total"], states, jobs["attempts"], jobs["resumes"]),
        "traced jobs: %d (%d spans)"
        % (report["traced_jobs"], report["spans"]),
    ]
    for stage, hist in report["latency"].items():
        if not hist["count"]:
            continue
        out.append("latency %s: n=%d p50=%.3fs p99=%.3fs"
                   % (stage, hist["count"], hist["p50"], hist["p99"]))
    if report["transforms"]:
        out.append("top transforms by wall seconds:")
        for row in report["transforms"][:10]:
            out.append(
                "  %-28s %5d inv %8.3fs  d_wns %8.2f  d_wirelen %10.1f"
                % (row["name"][:28], row["invocations"],
                   row["seconds"], row["wns_gain"],
                   row["wirelength_gain"]))
    return out


def write_fleet_report(report: dict, path: str) -> None:
    """Write a fleet report's JSON form to ``path``."""
    with open(path, "w") as stream:
        json.dump(report, stream, indent=2, sort_keys=False)
        stream.write("\n")
