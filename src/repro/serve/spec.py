"""Job specifications: what a client submits, validated and built.

A job spec is one JSON object describing a complete flow run::

    {
      "flow": "TPS",                      // or "SPR"
      "design": {"kind": "preset", "name": "Des1", "scale": 0.2},
      "config": {"seed": 1},              // flow-config overrides
      "chaos":  {"seed": 7, "rate": 0.05},// optional fault injection
      "persist": {"snapshot_mode": "delta"},
      "die_at_status": 50,                // first-attempt kill point
      "priority": 5,                      // higher leases first
      "queue": "bulk",                    // workers filter on class
      "retries": 2                        // transient-crash budget
    }

Design kinds:

``preset``
    One of the Table 1 ``Des1..Des5`` processor partitions
    (``name``, optional ``scale``, ``cycle``).
``processor``
    A parametric synthetic partition (``stages``, ``regs``, ``gates``,
    ``seed``, ``cycle``) — small ones make cheap smoke jobs.
``verilog``
    A structural Verilog file on the *server's* filesystem (``path``,
    optional ``cycle``, ``sdc``).

``config`` and ``persist`` are validated against the corresponding
dataclass state (unknown keys are rejected up front, at submit time,
not hours later in a worker).  ``die_at_status``/``die_at_snapshot``
arm the ``repro.persist`` kill points on the job's *first* attempt
only — the supervisor must see the worker die and resume it, which is
exactly how the service chaos-tests itself (see
``tests/serve/test_server.py``).
"""

from __future__ import annotations

from typing import Optional

from repro.scenario.spr import SPRConfig
from repro.scenario.tps import TPSConfig
from repro.workloads import (
    DES_PRESETS,
    ProcessorParams,
    build_des_design,
    make_design,
    processor_partition,
)

FLOWS = ("TPS", "SPR")
DESIGN_KINDS = ("preset", "processor", "verilog")

#: keys of PersistConfig state a job may override
PERSIST_KEYS = ("snapshot_every", "snapshot_mode", "full_every",
                "compact_every", "crash_quarantine_after")


class JobSpecError(ValueError):
    """The submitted job specification is malformed."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise JobSpecError(message)


def _check_design(design) -> dict:
    _require(isinstance(design, dict), "design must be an object")
    kind = design.get("kind", "preset")
    _require(kind in DESIGN_KINDS,
             "design.kind must be one of %s" % (DESIGN_KINDS,))
    out = {"kind": kind}
    if kind == "preset":
        name = design.get("name")
        _require(name in DES_PRESETS,
                 "design.name must be one of %s"
                 % sorted(DES_PRESETS))
        out["name"] = name
        out["scale"] = float(design.get("scale", 0.2))
        _require(out["scale"] > 0, "design.scale must be positive")
        if design.get("cycle") is not None:
            out["cycle"] = float(design["cycle"])
    elif kind == "processor":
        out["stages"] = int(design.get("stages", 2))
        out["regs"] = int(design.get("regs", 8))
        out["gates"] = int(design.get("gates", 110))
        out["seed"] = int(design.get("seed", 5))
        out["cycle"] = float(design.get("cycle", 1500.0))
        _require(out["stages"] > 0 and out["regs"] > 0
                 and out["gates"] > 0,
                 "processor dimensions must be positive")
    else:  # verilog
        path = design.get("path")
        _require(isinstance(path, str) and path,
                 "design.path is required for kind 'verilog'")
        out["path"] = path
        out["cycle"] = float(design.get("cycle", 1000.0))
        if design.get("sdc") is not None:
            out["sdc"] = str(design["sdc"])
    return out


def _check_overrides(overrides, allowed, what: str) -> dict:
    if overrides is None:
        return {}
    _require(isinstance(overrides, dict), "%s must be an object" % what)
    unknown = sorted(set(overrides) - set(allowed))
    _require(not unknown,
             "unknown %s key(s): %s" % (what, ", ".join(unknown)))
    return dict(overrides)


def normalize_spec(spec: dict) -> dict:
    """Validate a submitted spec; returns its canonical form.

    Raises :class:`JobSpecError` on anything malformed.  The
    canonical form is what the store journals and the worker
    executes, so validation happens exactly once, server-side.
    """
    _require(isinstance(spec, dict), "job spec must be a JSON object")
    flow = spec.get("flow", "TPS")
    _require(flow in FLOWS, "flow must be one of %s" % (FLOWS,))
    config_cls = TPSConfig if flow == "TPS" else SPRConfig
    out = {
        "flow": flow,
        "design": _check_design(spec.get("design")),
        "config": _check_overrides(spec.get("config"),
                                   config_cls().to_state(), "config"),
        "persist": _check_overrides(spec.get("persist"),
                                    PERSIST_KEYS, "persist"),
    }
    chaos = spec.get("chaos")
    if chaos is not None:
        _require(isinstance(chaos, dict) and "seed" in chaos,
                 "chaos must be an object with a 'seed'")
        out["chaos"] = {"seed": int(chaos["seed"]),
                        "rate": float(chaos.get("rate", 0.05))}
        if chaos.get("io_rate") is not None:
            # storage-fault injection rate at the repro.persist.io shim
            out["chaos"]["io_rate"] = float(chaos["io_rate"])
    for key in ("die_at_status", "die_at_snapshot"):
        if spec.get(key) is not None:
            out[key] = int(spec[key])
    if spec.get("guard_budget") is not None:
        out["guard_budget"] = float(spec["guard_budget"])
    # fleet scheduling: priority (higher first), queue class (workers
    # lease only from their classes), transient-crash retry budget
    if spec.get("priority") is not None:
        _require(isinstance(spec["priority"], int)
                 and not isinstance(spec["priority"], bool),
                 "priority must be an integer")
        out["priority"] = spec["priority"]
    if spec.get("queue") is not None:
        _require(isinstance(spec["queue"], str) and spec["queue"],
                 "queue must be a non-empty string")
        out["queue"] = spec["queue"]
    if spec.get("retries") is not None:
        _require(isinstance(spec["retries"], int)
                 and not isinstance(spec["retries"], bool)
                 and spec["retries"] >= 0,
                 "retries must be a non-negative integer")
        out["retries"] = spec["retries"]
    unknown = sorted(set(spec) - {
        "flow", "design", "config", "persist", "chaos",
        "die_at_status", "die_at_snapshot", "guard_budget",
        "priority", "queue", "retries"})
    _require(not unknown,
             "unknown job spec key(s): %s" % ", ".join(unknown))
    return out


def build_job_design(spec: dict, library):
    """A fresh Design from a canonical job spec (first attempt)."""
    design = spec["design"]
    kind = design["kind"]
    if kind == "preset":
        return build_des_design(design["name"], library,
                                scale=design["scale"],
                                cycle_time=design.get("cycle"))
    if kind == "processor":
        params = ProcessorParams(n_stages=design["stages"],
                                 regs_per_stage=design["regs"],
                                 gates_per_stage=design["gates"],
                                 seed=design["seed"])
        netlist = processor_partition(params, library)
        return make_design(netlist, library,
                           cycle_time=design["cycle"],
                           with_blockage=True)
    # verilog
    from repro.netlist.verilog import read_verilog
    with open(design["path"]) as stream:
        netlist = read_verilog(stream, library)
    built = make_design(netlist, library, cycle_time=design["cycle"])
    if design.get("sdc"):
        from repro.timing.sdc import read_sdc
        with open(design["sdc"]) as stream:
            built.constraints = read_sdc(stream)
        built.timing.constraints = built.constraints
        built.timing.invalidate_all()
    return built


def job_flow_config(spec: dict):
    """The TPSConfig/SPRConfig of a canonical spec (overrides applied
    over the flow's defaults, via the dataclass state codec)."""
    config_cls = TPSConfig if spec["flow"] == "TPS" else SPRConfig
    state = config_cls().to_state()
    state.update(spec.get("config", {}))
    return config_cls.from_state(state)


def job_guard_budget(spec: dict) -> Optional[float]:
    """The per-transform wall budget a job asked for, or None."""
    return spec.get("guard_budget")
