"""Flow service mode: a long-running job server over the TPS flows.

``python -m repro serve`` turns the batch reproduction into an
operable service (see ``docs/operations.md``): an ``http.server``
front end accepts flow jobs (a design recipe plus flow, guard, chaos,
and persistence options), a supervisor schedules them onto a pool of
worker *processes*, and every job runs inside the ``repro.persist``
machinery — its own run directory with a write-ahead journal and
milestone snapshots — so a worker that crashes or is killed is
detected by the supervisor and the job is *resumed* from its last
snapshot on a fresh worker, never restarted from scratch, with guard
quarantine honored across the retries.

Live observability crosses the process boundary through the
``repro.obs`` counter sink: each worker publishes its cumulative
counter registry and span summary to a small JSON file at every span
end, and the server's ``/metrics`` endpoint renders the fleet in
Prometheus text format.

Everything is standard library only: ``http.server``,
``multiprocessing``, ``threading``, ``json``.
"""

from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    Job,
    JobSpecError,
    JobStore,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
)
from repro.serve.metrics import prometheus_metrics
from repro.serve.pool import WorkerPool
from repro.serve.server import FlowServer
from repro.serve.spec import build_job_design, job_flow_config, normalize_spec

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "FlowServer",
    "Job",
    "JobSpecError",
    "JobStore",
    "QUEUED",
    "RUNNING",
    "TERMINAL_STATES",
    "WorkerPool",
    "build_job_design",
    "job_flow_config",
    "normalize_spec",
    "prometheus_metrics",
]
