"""Flow service mode: a crash-tolerant, multi-worker flow fleet.

``python -m repro serve`` turns the batch reproduction into an
operable service (see ``docs/operations.md``): an ``http.server``
front end accepts flow jobs (a design recipe plus flow, guard, chaos,
and persistence options), and every job runs inside the
``repro.persist`` machinery — its own run directory with a
write-ahead journal and milestone snapshots.

Scheduling is a **multi-host contract** over the shared state dir:
the server's in-process pool and any number of standalone
``python -m repro worker`` agents (separate processes, separate
hosts) lease jobs from one journaled :class:`JobStore`, heartbeat
while they run, and settle with per-lease **fencing tokens**.  A
worker that crashes or is killed goes silent; its lease expires, the
reaper requeues the job (exponential backoff, per-job retry budget),
and the next lease *resumes* from the last snapshot — never restarts
from scratch, with guard quarantine honored across retries.  A zombie
worker revived after its lease moved on has its late writes rejected
and the rejection journaled.  Admission control caps the queue with
HTTP 429 + ``Retry-After``.

Live observability crosses the process boundary through the
``repro.obs`` counter sink: each worker publishes its cumulative
counter registry and span summary to a small JSON file at every span
end, and the server's ``/metrics`` endpoint renders the fleet in
Prometheus text format.

Everything is standard library only: ``http.server``,
``multiprocessing``, ``threading``, ``json``.
"""

from repro.serve.agent import WorkerAgent
from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    Job,
    JobSpecError,
    JobStore,
    QUEUED,
    QueueFull,
    RUNNING,
    TERMINAL_STATES,
)
from repro.serve.lease import (
    Heartbeat,
    backoff_delay,
    fence_guard,
    live_workers,
    read_fence,
    read_heartbeat_docs,
    read_heartbeats,
    worker_identity,
    write_fence,
)
from repro.serve.metrics import prometheus_metrics
from repro.serve.pool import WorkerPool
from repro.serve.server import FlowServer
from repro.serve.spec import build_job_design, job_flow_config, normalize_spec

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "FlowServer",
    "Heartbeat",
    "Job",
    "JobSpecError",
    "JobStore",
    "QUEUED",
    "QueueFull",
    "RUNNING",
    "TERMINAL_STATES",
    "WorkerAgent",
    "WorkerPool",
    "backoff_delay",
    "build_job_design",
    "fence_guard",
    "job_flow_config",
    "live_workers",
    "normalize_spec",
    "prometheus_metrics",
    "read_fence",
    "read_heartbeat_docs",
    "read_heartbeats",
    "worker_identity",
    "write_fence",
]
