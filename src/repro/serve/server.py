"""The HTTP front end: ``http.server`` over the store and the pool.

The operator surface (documented end to end in
``docs/operations.md``):

====== ======================== =======================================
Verb   Path                     Meaning
====== ======================== =======================================
GET    /healthz                 liveness + fleet gauges (queue depth,
                                active leases, live workers)
POST   /jobs                    submit a job (JSON spec) → 202 + id
GET    /jobs                    list all jobs, oldest first
GET    /jobs/<id>               one job's status
GET    /jobs/<id>/result        the finished job's ``report.json``
POST   /jobs/<id>/cancel        cancel a queued or running job
GET    /metrics                 Prometheus text format
POST   /drain                   stop leasing; in-flight jobs finish
POST   /shutdown                graceful shutdown (``{"drain": bool}``)
====== ======================== =======================================

Errors are JSON ``{"error": ...}`` with conventional status codes
(400 malformed spec, 404 unknown job/path, 409 result not ready,
429 queue full — with a ``Retry-After`` header clients should honor —
503 shutting down *or storage-degraded*).  The server itself is a
:class:`http.server.ThreadingHTTPServer` — one OS thread per in-flight
request, which is plenty for an operator surface; the actual flow work
happens in the pool's worker *processes*.

Storage degradation: on startup the server fsck-scrubs its state dir
(``--repair`` semantics — torn tails truncated, corrupt milestones
quarantined; the scrub is lease-aware and leaves run dirs with live
external leases alone) and every ``/healthz`` scrape *probes* the
state dir with a real durable write.  When the disk dies —
unwritable, full, gone read-only — the service flips **degraded**:
status, results and ``/metrics`` keep serving from what is already on
disk, but submits get ``503`` with a ``Retry-After`` header.  The
flip is visible within one scrape (``degraded`` in ``/healthz`` and
as a ``storage.degraded`` gauge), and it heals itself the same way:
the next successful probe lifts the flag — including when the cause
was unrepaired fsck findings, in which case a successful probe
re-scrubs (detect-only, rate-limited) so an operator's ``repro fsck
--repair`` clears the flag without a restart.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.obs import CounterRegistry, read_sink
from repro.obs.hist import quantile_gauges
from repro.persist import RunDir, RunDirError, fsck_state_dir
from repro.persist import io as storage
from repro.serve.jobs import (
    DONE,
    JobSpecError,
    JobStore,
    QueueFull,
    RUNNING,
)
from repro.serve.metrics import prometheus_metrics
from repro.serve.pool import WorkerPool
from repro.serve.worker import SINK_FILE

_JOB_PATH = re.compile(r"^/jobs/([A-Za-z0-9_-]+)(/result|/cancel)?$")


class FlowServer:
    """One service instance: store + pool + HTTP listener.

    ``port=0`` binds an ephemeral port (tests); read ``address`` after
    construction for the actual endpoint.
    """

    def __init__(self, state_dir: str, host: str = "127.0.0.1",
                 port: int = 0, workers: int = 2,
                 max_attempts: int = 3, queue_cap: int = 0,
                 lease_ttl: Optional[float] = None,
                 fsck_on_start: bool = True) -> None:
        self.state_dir = state_dir
        self.store = JobStore(state_dir, queue_cap=queue_cap,
                              default_max_attempts=max_attempts)
        if lease_ttl is not None:
            self.store.lease_ttl = lease_ttl
        self.pool = WorkerPool(self.store, workers=workers)
        self.registry = CounterRegistry()
        self.registry.add("server", self.store.counters)
        self.registry.add("pool", self.pool.counters)
        self.registry.add("storage", self._storage_counters)
        self.fsck_report: Optional[dict] = None
        self._degraded_reason: Optional[str] = None
        #: seconds between degraded-mode re-scrubs (see probe_storage)
        self.fsck_rescrub_interval = 15.0
        self._rescrub_lock = threading.Lock()
        self._last_rescrub = time.monotonic()
        if fsck_on_start:
            # scrub before serving: the store's journal replay already
            # healed torn tails; this quarantines corrupt milestones
            # so resumes fall back to verified ones.  The scrub is
            # lease-aware (it holds jobs.lock and skips run dirs whose
            # job still holds a live lease), so repairing here cannot
            # corrupt state an external agent worker is writing.
            self.fsck_report = fsck_state_dir(state_dir, repair=True)
        self.probe_storage()
        self._shutting_down = threading.Event()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.flow_server = self  # handler back-pointer
        self._http_thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port)."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        """The service base URL (``http://host:port``)."""
        host, port = self.address
        return "http://%s:%d" % (host, port)

    def start(self) -> None:
        """Start the pool scheduler and the HTTP listener."""
        self.pool.start()
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-http", daemon=True)
        self._http_thread.start()

    def shutdown(self, drain: bool = False,
                 timeout: Optional[float] = None) -> None:
        """Stop gracefully: refuse new jobs, stop the pool, close HTTP.

        Queued jobs stay journaled; interrupted running jobs are
        released back to the queue — a server restarted on the same
        state dir resumes them (see ``docs/operations.md``).
        """
        if self._shutting_down.is_set():
            return
        self._shutting_down.set()
        self.pool.stop(drain=drain, timeout=timeout)
        self._httpd.shutdown()
        if self._http_thread is not None:
            self._http_thread.join(timeout=10.0)
        self._httpd.server_close()

    def wait(self) -> None:
        """Block until the HTTP listener stops (CLI foreground mode)."""
        if self._http_thread is not None:
            while self._http_thread.is_alive():
                self._http_thread.join(timeout=0.5)

    # -- request logic (called by the handler) -------------------------

    def job_status(self, job) -> dict:
        """A job summary enriched with live run-dir telemetry."""
        payload = job.summary()
        sink = read_sink("%s/%s" % (self.store.run_path(job.job_id),
                                    SINK_FILE))
        if sink is not None:
            payload["cut_status"] = sink.get("status")
            payload["spans"] = sink.get("spans", {}).get("total")
            payload["metrics_updated"] = sink.get("updated")
        return payload

    def job_result(self, job) -> Optional[dict]:
        """The stored ``report.json`` of a completed job, or None."""
        try:
            return RunDir.open(self.store.run_path(job.job_id)) \
                .read_report()
        except RunDirError:
            return None

    def metrics_text(self) -> str:
        """The full Prometheus payload: registry + live job sinks."""
        documents = []
        for job in self.store.in_state(RUNNING, DONE):
            document = read_sink("%s/%s"
                                 % (self.store.run_path(job.job_id),
                                    SINK_FILE))
            if document is not None:
                documents.append(document)
        return prometheus_metrics(self.registry.snapshot(), documents,
                                  self.latency_histograms())

    def latency_histograms(self) -> dict:
        """All three serve latency histograms by stage name.

        ``submit_to_lease`` and ``job_run`` come from the store
        (journal-derived, fleet-wide); ``lease_to_start`` from the
        pool (this process's own spawns).
        """
        merged = dict(self.store.histograms)
        merged.update(self.pool.histograms)
        return merged

    @property
    def shutting_down(self) -> bool:
        """True once shutdown began (new submissions are refused)."""
        return self._shutting_down.is_set()

    # -- storage health ------------------------------------------------

    def probe_storage(self) -> bool:
        """One durable write into the state dir; flips ``degraded``.

        Runs on every ``/healthz`` scrape and before every submit, so
        a dead disk shows up within one scrape — and so does its
        recovery: degradation is a *probe result*, not a latch.  The
        probe file is unique per pid *and thread*: handler threads
        probe concurrently, and sharing one path would let one
        thread's cleanup race another's mid-publish rename.
        """
        probe = os.path.join(
            self.state_dir,
            ".probe.%d.%d.json" % (os.getpid(), threading.get_ident()))
        try:
            storage.atomic_write_json(probe, {"pid": os.getpid()})
            try:
                os.remove(probe)
            except OSError:
                pass  # already gone; harmless
        except (OSError, storage.IoFatalError) as exc:
            self._degraded_reason = ("state dir unwritable: %s" % exc)
            return False
        if self.fsck_report is not None \
                and self.fsck_report["unrepaired"]:
            # the startup report is a snapshot — once the operator has
            # run the repair it tells them to, only a fresh scrub can
            # prove the findings are gone and lift the flag
            self._maybe_rescrub()
        if self.fsck_report is not None \
                and self.fsck_report["unrepaired"]:
            self._degraded_reason = (
                "%d unrepaired fsck finding(s); run `repro fsck "
                "--repair %s`" % (self.fsck_report["unrepaired"],
                                  self.state_dir))
            return False
        self._degraded_reason = None
        return True

    def _maybe_rescrub(self) -> None:
        """Refresh ``fsck_report`` after an operator repair.

        Detect-only (the request path must never mutate the state
        dir), at most once per ``fsck_rescrub_interval`` seconds, and
        single-flight across handler threads — a slow scrub must not
        pile up behind concurrent ``/healthz`` scrapes.
        """
        if not self._rescrub_lock.acquire(blocking=False):
            return
        try:
            if (time.monotonic() - self._last_rescrub
                    < self.fsck_rescrub_interval):
                return
            self._last_rescrub = time.monotonic()
            try:
                self.fsck_report = fsck_state_dir(self.state_dir,
                                                  repair=False)
            except (OSError, storage.IoFatalError):
                pass  # keep the stale report; stay degraded
        finally:
            self._rescrub_lock.release()

    def note_storage_failure(self, exc: BaseException) -> None:
        """A durable write failed in a handler: degrade immediately."""
        self._degraded_reason = "storage failure: %s" % exc

    @property
    def degraded(self) -> bool:
        """Read-only mode: reads serve, submits get 503."""
        return self._degraded_reason is not None

    @property
    def degraded_reason(self) -> Optional[str]:
        """Why the service is degraded (None when healthy)."""
        return self._degraded_reason

    def _storage_counters(self) -> dict:
        gauges = dict(storage.counters())
        gauges["degraded"] = int(self.degraded)
        report = self.fsck_report
        gauges["fsck_findings"] = (report["total_findings"]
                                   if report else 0)
        gauges["fsck_unrepaired"] = (report["unrepaired"]
                                     if report else 0)
        return gauges


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning :class:`FlowServer`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    @property
    def flow(self) -> FlowServer:
        return self.server.flow_server

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        pass  # the operator surface is /metrics, not an access log

    def _send(self, code: int, payload, content_type="application/json",
              headers=None):
        if isinstance(payload, (dict, list)):
            body = (json.dumps(payload, indent=2, sort_keys=True)
                    + "\n").encode()
        else:
            body = payload if isinstance(payload, bytes) \
                else str(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._send(code, {"error": message})

    def _degraded_503(self, retry_after: int = 30) -> None:
        self._send(503, {"error": "service degraded (read-only): %s"
                                  % self.flow.degraded_reason,
                         "degraded": True,
                         "retry_after": retry_after},
                   headers={"Retry-After": "%d" % retry_after})

    def _body(self) -> Optional[dict]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        try:
            return json.loads(self.rfile.read(length) or b"{}")
        except ValueError:
            return None

    # -- GET -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            self.flow.probe_storage()  # degradation shows this scrape
            counters = self.flow.registry.snapshot()
            self._send(200, {
                "ok": True,
                "degraded": self.flow.degraded,
                "degraded_reason": self.flow.degraded_reason,
                "fsck_unrepaired":
                    counters.get("storage.fsck_unrepaired", 0),
                "shutting_down": self.flow.shutting_down,
                "draining": self.flow.pool.draining,
                "workers_busy": counters.get("pool.workers_busy", 0),
                "jobs_queued": counters.get("server.jobs_queued", 0),
                "jobs_running": counters.get("server.jobs_running", 0),
                "queue_depth": counters.get("server.jobs_queued", 0),
                "queue_cap": counters.get("server.queue_cap", 0),
                "leases_active": counters.get("server.leases_active",
                                              0),
                "workers_live": counters.get("server.workers_live", 0),
                # p50/p99 per latency stage (empty stages omitted)
                "latency": quantile_gauges(
                    self.flow.latency_histograms()),
            })
        elif self.path == "/metrics":
            self._send(200, self.flow.metrics_text().encode(),
                       content_type="text/plain; version=0.0.4; "
                                    "charset=utf-8")
        elif self.path == "/jobs":
            self._send(200, {"jobs": [self.flow.job_status(job)
                                      for job in self.flow.store.jobs()]})
        else:
            match = _JOB_PATH.match(self.path)
            if match is None or match.group(2) == "/cancel":
                self._error(404, "no such path: %s" % self.path)
                return
            job = self.flow.store.get(match.group(1))
            if job is None:
                self._error(404, "no such job: %s" % match.group(1))
                return
            if match.group(2) == "/result":
                if job.state != DONE:
                    self._error(409, "job %s is %s, not done"
                                % (job.job_id, job.state))
                    return
                report = self.flow.job_result(job)
                if report is None:
                    self._error(409, "job %s has no stored report"
                                % job.job_id)
                    return
                self._send(200, report)
            else:
                self._send(200, self.flow.job_status(job))

    # -- POST ----------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/jobs":
            if self.flow.shutting_down:
                self._error(503, "server is shutting down")
                return
            if not self.flow.probe_storage():
                self._degraded_503()
                return
            body = self._body()
            if body is None:
                self._error(400, "request body is not valid JSON")
                return
            try:
                job = self.flow.store.submit(body)
            except JobSpecError as exc:
                self._error(400, str(exc))
                return
            except storage.IoFatalError as exc:
                # the journal append itself died: degrade on the spot
                self.flow.note_storage_failure(exc)
                self._degraded_503()
                return
            except QueueFull as exc:
                # backpressure: tell the client when to come back
                self._send(429, {"error": str(exc),
                                 "retry_after": exc.retry_after,
                                 "queue_depth": exc.depth,
                                 "queue_cap": exc.cap},
                           headers={"Retry-After":
                                    "%d" % max(1, round(
                                        exc.retry_after))})
                return
            self._send(202, {"job_id": job.job_id,
                             "state": job.state})
        elif self.path == "/drain":
            # graceful drain: stop leasing, keep serving; in-flight
            # jobs finish, queued jobs wait for workers elsewhere
            self.flow.pool.drain()
            self._send(202, {"draining": True})
        elif self.path == "/shutdown":
            body = self._body() or {}
            drain = bool(body.get("drain", False))
            self._send(202, {"shutting_down": True, "drain": drain})
            # shut down off-thread: this handler must finish first
            threading.Thread(
                target=self.flow.shutdown,
                kwargs={"drain": drain,
                        "timeout": body.get("timeout")},
                daemon=True).start()
        else:
            match = _JOB_PATH.match(self.path)
            if match is None or match.group(2) != "/cancel":
                self._error(404, "no such path: %s" % self.path)
                return
            job = self.flow.store.get(match.group(1))
            if job is None:
                self._error(404, "no such job: %s" % match.group(1))
                return
            if job.state in ("done", "failed", "cancelled"):
                self._error(409, "job %s already %s"
                            % (job.job_id, job.state))
                return
            acted = self.flow.pool.cancel(job)
            self._send(202, {"job_id": job.job_id,
                             "cancelling": acted,
                             "state": job.state})
