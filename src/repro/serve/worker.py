"""The job worker: one process, one flow run, durable by construction.

``worker_entry`` is the target of every worker process the
supervisor spawns (``multiprocessing`` spawn context, so each attempt
is a genuinely fresh interpreter — the same isolation the CLI resume
path assumes).  The decision fresh-vs-resume is made from the run
directory alone, never from scheduler state:

* no usable run directory → build the design from the job spec,
  create the run dir, arm any first-attempt kill points
  (``die_at_status`` / ``die_at_snapshot``), run;
* run directory with a milestone snapshot → ``repro.persist``'s
  :func:`~repro.persist.resume.load_resume` rebuilds the design,
  quarantines crash-implicated transforms, and the scenario continues
  mid-flow (kill points are deliberately *not* re-armed: a resumed
  attempt must be allowed to finish);
* run directory with a ``run_end`` → the work already happened;
  exit 0 idempotently.

The worker's tracer streams spans to the run dir's ``trace.jsonl``
(as any durable run does) *and* publishes live counters to
``metrics.json`` through a :class:`repro.obs.CounterSink`, which is
what the server's ``/metrics`` endpoint aggregates.

The lease's fencing token extends into the run directory: ``run_job``
installs a :func:`~repro.serve.lease.fence_guard` on the run's
``FlowPersist``, so a worker whose lease expired and whose job was
re-leased elsewhere aborts before its next journal append or snapshot
(``FENCED_EXIT_CODE``) instead of racing the new holder's resume.

Exit codes: 0 success, ``DIE_EXIT_CODE`` (17) simulated kill, 3 bad
job input, ``FENCED_EXIT_CODE`` (4) fenced off mid-flow,
``IO_EXIT_CODE`` (5) fatal storage failure (disk full, read-only —
the shim's retries were exhausted or the errno was hopeless), anything
else a genuine crash.  Every nonzero exit leaves a resumable run
directory behind; the supervisor requeues 5 like any crash, so the
retry backoff doubles as "wait for the disk to come back".
"""

from __future__ import annotations

import os
import sys

from repro import default_library
from repro.guard import FaultInjector, GuardConfig
from repro.obs import CounterSink, Tracer, TraceWriter
from repro.persist import (
    FlowPersist,
    IO_EXIT_CODE,
    IoFatalError,
    Journal,
    JournalError,
    PersistConfig,
    RunDir,
    RunDirError,
    RunFencedError,
    SnapshotError,
    load_resume,
)
from repro.scenario import SPRFlow, TPSScenario
from repro.serve.lease import fence_guard
from repro.serve.spec import (
    JobSpecError,
    build_job_design,
    job_flow_config,
    normalize_spec,
)

#: worker exit code for a job that cannot even be constructed
BAD_JOB_EXIT_CODE = 3

#: worker exit code when the run dir's fence moved on mid-flow (the
#: lease expired and the job was re-leased to another worker)
FENCED_EXIT_CODE = 4

SINK_FILE = "metrics.json"


def _injector(spec: dict):
    chaos = spec.get("chaos")
    if chaos is None:
        return None
    return FaultInjector(seed=chaos["seed"], rate=chaos["rate"],
                         io_rate=chaos.get("io_rate", 0.0))


def _scenario_cls(flow: str):
    return TPSScenario if flow == "TPS" else SPRFlow


def _tracer(design, run_path: str, job_id: str, flow: str,
            resumed: bool) -> Tracer:
    sink = CounterSink(os.path.join(run_path, SINK_FILE),
                       labels={"job": job_id, "flow": flow})
    writer = TraceWriter(os.path.join(run_path, "trace.jsonl"),
                         resume=resumed)
    return Tracer(design, writer=writer, sink=sink)


def _resumable(run_path: str) -> bool:
    """Does ``run_path`` hold a run a fresh process could continue?"""
    return (os.path.isfile(os.path.join(run_path, "run.json"))
            and os.path.isfile(os.path.join(run_path, "journal.jsonl")))


def run_job(job_id: str, raw_spec: dict, run_path: str,
            token: int = 0) -> int:
    """Execute one job to completion (or death); returns an exit code.

    ``token`` is the lease's fencing token: with it, the run's
    ``FlowPersist`` checks the run dir's fence file before every
    durable write and the flow aborts with ``FENCED_EXIT_CODE`` the
    moment a newer lease takes the directory over.  ``token=0`` (CLI
    and unit-test runs without a lease) disables the guard.

    Importable and callable in-process for unit tests; the server
    always runs it behind :func:`worker_entry` in a child process.
    """
    library = default_library()
    try:
        spec = normalize_spec(raw_spec)
    except JobSpecError as exc:
        print("bad job spec: %s" % exc, file=sys.stderr)
        return BAD_JOB_EXIT_CODE
    fence = fence_guard(run_path, token) if token else None
    injector = _injector(spec)
    # io chaos arms on the first attempt only (like die_at_*): a
    # resumed attempt with the same seed would hit the same injected
    # fault at the same write and the job could never finish
    if injector is not None and injector.has_io_chaos() \
            and not _resumable(run_path):
        injector.arm_io()

    try:
        if _resumable(run_path):
            try:
                return _resume_job(job_id, spec, run_path, library,
                                   fence, injector)
            except (RunDirError, JournalError) as exc:
                print("unusable run dir %s: %s" % (run_path, exc),
                      file=sys.stderr)
                return BAD_JOB_EXIT_CODE
            except SnapshotError:
                # died before the init snapshot: nothing to continue
                # from, so fall through and start the run over
                pass
        return _fresh_job(job_id, spec, run_path, library, fence,
                          injector)
    except RunFencedError as exc:
        print("fenced off mid-flow: %s" % exc, file=sys.stderr)
        return FENCED_EXIT_CODE
    except IoFatalError as exc:
        print("fatal storage failure: %s" % exc, file=sys.stderr)
        return IO_EXIT_CODE
    finally:
        if injector is not None:
            injector.disarm_io()


def _fresh_job(job_id: str, spec: dict, run_path: str, library,
               fence=None, injector=None) -> int:
    try:
        design = build_job_design(spec, library)
    except (OSError, ValueError) as exc:
        print("cannot build design: %s" % exc, file=sys.stderr)
        return BAD_JOB_EXIT_CODE
    config = job_flow_config(spec)
    if spec.get("guard_budget") is not None:
        if config.guard is None:
            # durable default (retries before striking) + the budget
            config.guard = GuardConfig(retries=2)
        config.guard.budget_seconds = spec["guard_budget"]
    pconfig = PersistConfig.from_state(spec.get("persist", {}))
    # first-attempt kill points: the server chaos-tests itself with
    # these, and the resume attempt must not inherit them
    pconfig.die_at_status = spec.get("die_at_status")
    pconfig.die_at_snapshot = spec.get("die_at_snapshot")
    meta = {
        "flow": spec["flow"],
        "job_id": job_id,
        "spec": spec,
        "config": config.to_state(),
        "chaos": spec.get("chaos"),
        "persist": pconfig.to_state(),
    }
    rundir = RunDir.create(run_path, meta)
    journal = Journal.create(rundir.journal_path)
    persist = FlowPersist(rundir, journal, pconfig, design,
                          fence=fence)
    scenario = _scenario_cls(spec["flow"])(
        design, config=config, injector=injector,
        persist=persist,
        tracer=_tracer(design, run_path, job_id, spec["flow"],
                       resumed=False))
    scenario.run()
    return 0


def _resume_job(job_id: str, spec: dict, run_path: str, library,
                fence=None, injector=None) -> int:
    run = load_resume(run_path, library, fence=fence)
    if run.completed:
        return 0  # the previous worker finished; exit idempotently
    config_cls = type(job_flow_config(spec))
    config = config_cls.from_state(run.meta["config"])
    scenario = _scenario_cls(spec["flow"])(
        run.design, config=config, injector=injector,
        persist=run.persist, resume_state=run.resume_state,
        tracer=_tracer(run.design, run_path, job_id, spec["flow"],
                       resumed=True))
    scenario.run()
    return 0


def worker_entry(job_id: str, spec: dict, run_path: str,
                 token: int = 0) -> None:
    """Process target: run the job, exit with its code."""
    code = run_job(job_id, spec, run_path, token=token)
    if code:
        raise SystemExit(code)
