"""The supervisor: a bounded pool of single-job worker processes.

One scheduler thread owns the whole lifecycle: it claims queued jobs
from the :class:`~repro.serve.jobs.JobStore`, spawns one
``multiprocessing`` (spawn-context) process per job up to the worker
limit, and reaps the dead.  A worker that exits 0 completes its job; a
worker that dies any other way — a crash, a ``die_at_*`` simulated
kill (exit 17), an OOM kill — gets its job *requeued*, and because the
job's run directory survived, the next attempt resumes from the last
milestone snapshot with crash-implicated transforms quarantined
(``repro.persist``'s standard resume semantics).  After
``max_attempts`` worker deaths the job is failed rather than retried
forever.

Cancellation terminates the worker (SIGTERM); a graceful stop
terminates the running workers too but leaves their jobs non-terminal
in the journal, so the next server picks them up as resumes — the
difference is only who asked.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import Dict, Optional

from repro.persist import DIE_EXIT_CODE
from repro.serve.jobs import CANCELLED, DONE, FAILED, Job, JobStore
from repro.serve.worker import BAD_JOB_EXIT_CODE, worker_entry

#: scheduler poll period (seconds); latency floor for job pickup
TICK = 0.05


class WorkerPool:
    """Schedule store jobs onto at most ``workers`` child processes."""

    def __init__(self, store: JobStore, workers: int = 2,
                 max_attempts: int = 3) -> None:
        self.store = store
        self.workers = max(1, workers)
        #: worker deaths after which a job is failed, not requeued
        self.max_attempts = max(1, max_attempts)
        self._ctx = multiprocessing.get_context("spawn")
        self._procs: Dict[str, multiprocessing.Process] = {}
        self._cancelling: set = set()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._accepting = threading.Event()
        self._accepting.set()
        self._thread: Optional[threading.Thread] = None
        self._totals = {"spawned": 0, "crashes": 0, "kills": 0}

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Start the scheduler thread."""
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-serve-pool",
                                        daemon=True)
        self._thread.start()

    def stop(self, drain: bool = False,
             timeout: Optional[float] = None) -> None:
        """Stop scheduling; optionally wait for running jobs.

        ``drain=True`` lets already-running workers finish (bounded by
        ``timeout``); queued jobs stay journaled for the next server.
        ``drain=False`` terminates running workers immediately — their
        run directories make the interruption recoverable.
        """
        self._accepting.clear()
        if drain:
            deadline = (time.monotonic() + timeout
                        if timeout is not None else None)
            while self.busy() and (deadline is None
                                   or time.monotonic() < deadline):
                time.sleep(TICK)
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        # anything still alive is interrupted, not finished: terminate
        # and put the job back in line for the next server
        with self._lock:
            leftovers = dict(self._procs)
        for job_id, proc in leftovers.items():
            proc.terminate()
            proc.join(timeout=10.0)
            job = self.store.get(job_id)
            if job is not None and job.state not in (DONE, FAILED,
                                                     CANCELLED):
                self.store.release(job)
        with self._lock:
            self._procs.clear()

    # -- scheduling loop -----------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            self._reap()
            while self._accepting.is_set() and self.busy() < self.workers:
                job = self.store.claim_next()
                if job is None:
                    break
                self._spawn(job)
            time.sleep(TICK)
        self._reap()

    def _spawn(self, job: Job) -> None:
        proc = self._ctx.Process(
            target=worker_entry,
            args=(job.job_id, job.spec, self.store.run_path(job.job_id)),
            name="repro-worker-%s" % job.job_id,
            daemon=True)
        try:
            proc.start()
        except Exception as exc:  # spawn failed: keep scheduling alive
            self.store.finish(job, FAILED,
                              error="cannot start worker: %s" % exc)
            return
        with self._lock:
            self._procs[job.job_id] = proc
            self._totals["spawned"] += 1

    def _reap(self) -> None:
        with self._lock:
            finished = [(job_id, proc)
                        for job_id, proc in self._procs.items()
                        if proc.exitcode is not None]
            for job_id, _ in finished:
                del self._procs[job_id]
        for job_id, proc in finished:
            proc.join()
            self._settle(job_id, proc.exitcode)

    def _settle(self, job_id: str, exit_code: int) -> None:
        """Translate one worker exit into the job's next state."""
        job = self.store.get(job_id)
        if job is None:
            return
        cancelled = job_id in self._cancelling
        self._cancelling.discard(job_id)
        if cancelled:
            self.store.finish(job, CANCELLED, exit_code=exit_code)
        elif exit_code == 0:
            self.store.finish(job, DONE, exit_code=0)
        elif exit_code == BAD_JOB_EXIT_CODE:
            self.store.finish(job, FAILED, exit_code=exit_code,
                              error="worker rejected the job "
                                    "(exit %d)" % exit_code)
        elif job.attempts >= self.max_attempts:
            self._totals["crashes"] += 1
            self.store.finish(job, FAILED, exit_code=exit_code,
                              error="worker died (exit %d) on final "
                                    "attempt %d/%d"
                                    % (exit_code, job.attempts,
                                       self.max_attempts))
        else:
            # the run dir survived the death: requeue for a resume
            self._totals["crashes"] += 1
            self.store.requeue(job, exit_code)

    # -- controls ------------------------------------------------------

    def cancel(self, job: Job) -> bool:
        """Cancel a queued or running job; returns True if acted."""
        with self._lock:
            proc = self._procs.get(job.job_id)
            if proc is not None and proc.exitcode is None:
                self._cancelling.add(job.job_id)
                self._totals["kills"] += 1
                proc.terminate()
                return True
        if job.state == "queued":
            self.store.finish(job, CANCELLED)
            return True
        return False

    # -- introspection -------------------------------------------------

    def busy(self) -> int:
        """Worker processes currently alive."""
        with self._lock:
            return sum(1 for proc in self._procs.values()
                       if proc.exitcode is None)

    def running_job_ids(self):
        """Job ids with a live or unreaped worker process."""
        with self._lock:
            return sorted(self._procs)

    def counters(self) -> Dict[str, int]:
        """Pool accounting for the server registry / ``/metrics``."""
        with self._lock:
            alive = sum(1 for proc in self._procs.values()
                        if proc.exitcode is None)
        return {
            "workers": self.workers,
            "workers_busy": alive,
            "workers_spawned": self._totals["spawned"],
            "worker_crashes": self._totals["crashes"],
            "worker_kills": self._totals["kills"],
            "max_attempts": self.max_attempts,
        }


#: re-export: the simulated-kill exit code workers die with
__all__ = ["WorkerPool", "DIE_EXIT_CODE", "TICK"]
