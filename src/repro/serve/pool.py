"""The in-server supervisor: a lease-holding pool of worker processes.

One scheduler thread owns the whole lifecycle: it heartbeats the
pool's worker identity, runs the fleet's failure detector
(:meth:`~repro.serve.jobs.JobStore.reap_expired`), leases queued jobs
from the shared :class:`~repro.serve.jobs.JobStore`, spawns one
``multiprocessing`` (spawn-context) process per job up to the worker
limit, and reaps the dead.  Every lease's fencing token is carried to
the settle step, so even the server's own writes obey the fleet's
fencing discipline — a pool that stalls long enough for its lease to
expire and its job to move elsewhere will have its late finish
rejected exactly like any other zombie.

Worker-exit taxonomy (the retry policy):

* exit 0 — job done;
* ``BAD_JOB_EXIT_CODE`` (3) — the job itself is bad (unbuildable
  design, unreadable run dir): fail fast, no retry;
* anything else — a transient crash: requeue with exponential backoff
  until the job's retry budget (spec ``retries``, default
  ``max_attempts - 1``) is spent, then fail.  The run directory
  survives every death, so each retry is a *resume* with
  crash-implicated transforms quarantined (``repro.persist``'s
  standard semantics).  ``IO_EXIT_CODE`` (5, fatal storage failure)
  deliberately lands here too: the backoff doubles as "wait for the
  disk to come back", and the resume continues from the last
  milestone that made it to disk.

``workers=0`` runs the pool as a pure front end: no leases are taken,
but the heartbeat/reap loop still runs so a server with only external
``python -m repro worker`` agents keeps a failure detector alive.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import Dict, Optional, Set, Tuple

from repro.obs.hist import LatencyHistogram
from repro.persist import DIE_EXIT_CODE
from repro.serve.jobs import CANCELLED, DONE, FAILED, Job, JobStore
from repro.serve.lease import Heartbeat, worker_identity
from repro.serve.worker import BAD_JOB_EXIT_CODE, worker_entry

#: scheduler poll period (seconds); latency floor for job pickup
TICK = 0.05


class WorkerPool:
    """Schedule store jobs onto at most ``workers`` child processes."""

    def __init__(self, store: JobStore, workers: int = 2,
                 max_attempts: Optional[int] = None,
                 queues: Optional[Set[str]] = None) -> None:
        self.store = store
        self.workers = max(0, workers)
        #: lease ceiling for jobs without their own retry budget
        if max_attempts is not None:
            store.default_max_attempts = max(1, max_attempts)
        self.max_attempts = store.default_max_attempts
        #: queue classes this pool leases from (None = all)
        self.queues = set(queues) if queues else None
        self.worker_id = worker_identity("pool")
        self.heartbeat = Heartbeat(store.state_dir, self.worker_id,
                                   interval=store.lease_ttl / 4.0)
        self._ctx = multiprocessing.get_context("spawn")
        #: job_id → (process, fencing token of its lease)
        self._procs: Dict[str, Tuple[multiprocessing.Process, int]] = {}
        self._cancelling: set = set()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._accepting = threading.Event()
        self._accepting.set()
        self._thread: Optional[threading.Thread] = None
        self._last_reap = 0.0
        self._totals = {"spawned": 0, "crashes": 0, "kills": 0}
        #: lease→start spawn latency (this pool's own processes only —
        #: unlike the store's journal-derived histograms, spawn times
        #: are never journaled, so this one is per-process)
        self.histograms = {"lease_to_start": LatencyHistogram()}

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Start the scheduler thread."""
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-serve-pool",
                                        daemon=True)
        self._thread.start()

    def drain(self) -> None:
        """Stop leasing new jobs; in-flight workers keep running."""
        self._accepting.clear()

    @property
    def draining(self) -> bool:
        """True once the pool stopped leasing (drain or shutdown)."""
        return not self._accepting.is_set()

    def stop(self, drain: bool = False,
             timeout: Optional[float] = None) -> None:
        """Stop scheduling; optionally wait for running jobs.

        ``drain=True`` lets already-running workers finish (bounded by
        ``timeout``); queued jobs stay journaled for the next server.
        ``drain=False`` terminates running workers immediately — their
        run directories make the interruption recoverable.
        """
        self._accepting.clear()
        if drain:
            deadline = (time.monotonic() + timeout
                        if timeout is not None else None)
            while self.busy() and (deadline is None
                                   or time.monotonic() < deadline):
                time.sleep(TICK)
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        # anything still alive is interrupted, not finished: terminate
        # and put the job back in line for the next server
        with self._lock:
            leftovers = dict(self._procs)
        for job_id, (proc, token) in leftovers.items():
            proc.terminate()
            proc.join(timeout=10.0)
            job = self.store.get(job_id)
            if job is not None and job.state not in (DONE, FAILED,
                                                     CANCELLED):
                self.store.release(job, token=token)
        with self._lock:
            self._procs.clear()
        self.heartbeat.remove()

    # -- scheduling loop -----------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.heartbeat.write(jobs=self.running_job_ids())
            self._reap_leases()
            self._reap()
            while (self._accepting.is_set()
                   and self.busy() < self.workers):
                job = self.store.claim_next(worker=self.worker_id,
                                            queues=self.queues)
                if job is None:
                    break
                self._spawn(job)
            time.sleep(TICK)
        self._reap()

    def _reap_leases(self) -> None:
        """Run the fleet failure detector every TTL/4 seconds."""
        now = time.monotonic()
        if now - self._last_reap < self.store.lease_ttl / 4.0:
            return
        self._last_reap = now
        self.store.reap_expired()

    def _spawn(self, job: Job) -> None:
        # ``job`` is claim_next's detached snapshot: its token was
        # captured under the store lock when the lease was journaled,
        # so a foreign expire+re-lease between claim and spawn cannot
        # swap a token this pool does not own under us.
        proc = self._ctx.Process(
            target=worker_entry,
            args=(job.job_id, job.spec, self.store.run_path(job.job_id),
                  job.token),
            name="repro-worker-%s" % job.job_id,
            daemon=True)
        try:
            proc.start()
        except Exception as exc:  # spawn failed: keep scheduling alive
            self.store.finish(job, FAILED, token=job.token,
                              worker=self.worker_id,
                              error="cannot start worker: %s" % exc)
            return
        if job.leased_at:
            self.histograms["lease_to_start"].observe(
                max(0.0, time.time() - job.leased_at))
        with self._lock:
            self._procs[job.job_id] = (proc, job.token)
            self._totals["spawned"] += 1

    def _reap(self) -> None:
        with self._lock:
            finished = [(job_id, proc, token)
                        for job_id, (proc, token) in self._procs.items()
                        if proc.exitcode is not None]
            for job_id, _, _ in finished:
                del self._procs[job_id]
        for job_id, proc, token in finished:
            proc.join()
            self._settle(job_id, proc.exitcode, token)

    def _settle(self, job_id: str, exit_code: int, token: int) -> None:
        """Translate one worker exit into the job's next state."""
        job = self.store.get(job_id)
        if job is None:
            return
        cancelled = job_id in self._cancelling
        self._cancelling.discard(job_id)
        if cancelled:
            self.store.finish(job, CANCELLED, exit_code=exit_code,
                              token=token, worker=self.worker_id)
        elif exit_code == 0:
            self.store.finish(job, DONE, exit_code=0, token=token,
                              worker=self.worker_id)
        elif exit_code == BAD_JOB_EXIT_CODE:
            self.store.finish(job, FAILED, exit_code=exit_code,
                              token=token, worker=self.worker_id,
                              error="worker rejected the job "
                                    "(exit %d)" % exit_code)
        elif job.attempts >= job.max_attempts(self.max_attempts):
            self._totals["crashes"] += 1
            self.store.finish(job, FAILED, exit_code=exit_code,
                              token=token, worker=self.worker_id,
                              error="worker died (exit %d) on final "
                                    "attempt %d/%d"
                                    % (exit_code, job.attempts,
                                       job.max_attempts(
                                           self.max_attempts)))
        else:
            # the run dir survived the death: requeue for a resume,
            # gated behind the store's exponential backoff
            self._totals["crashes"] += 1
            self.store.requeue(job, exit_code, token=token,
                               cause="crash", worker=self.worker_id)

    # -- controls ------------------------------------------------------

    def cancel(self, job: Job) -> bool:
        """Cancel a queued or running job; returns True if acted."""
        with self._lock:
            entry = self._procs.get(job.job_id)
            if entry is not None and entry[0].exitcode is None:
                self._cancelling.add(job.job_id)
                self._totals["kills"] += 1
                entry[0].terminate()
                return True
        if job.state == "queued":
            return self.store.finish(job, CANCELLED)
        return False

    # -- introspection -------------------------------------------------

    def busy(self) -> int:
        """Worker processes currently alive."""
        with self._lock:
            return sum(1 for proc, _ in self._procs.values()
                       if proc.exitcode is None)

    def running_job_ids(self):
        """Job ids with a live or unreaped worker process."""
        with self._lock:
            return sorted(self._procs)

    def counters(self) -> Dict[str, int]:
        """Pool accounting for the server registry / ``/metrics``."""
        with self._lock:
            alive = sum(1 for proc, _ in self._procs.values()
                        if proc.exitcode is None)
        return {
            "workers": self.workers,
            "workers_busy": alive,
            "workers_spawned": self._totals["spawned"],
            "worker_crashes": self._totals["crashes"],
            "worker_kills": self._totals["kills"],
            "max_attempts": self.max_attempts,
        }


#: re-export: the simulated-kill exit code workers die with
__all__ = ["WorkerPool", "DIE_EXIT_CODE", "TICK"]
