"""Payoff accounting: roll a span stream into per-transform totals.

PR 4 made every transform invocation a :class:`~repro.obs.Span`; this
module is the first thing that *reads* them.  :func:`analyze_trace`
folds a ``trace.jsonl`` record stream into one :class:`PayoffRow` per
``(name, kind)`` — invocations, accepts/rejects, wall seconds, the
summed metric movement (ΔWNS/ΔTNS/Δwirelength), per-second payoff
rates, and the summed counter deltas (including the ``profile.*``
kernel timers) — the measured per-transform payoff signal that
ROADMAP's span-driven auto-tuning item and the trace-diff triage tool
(:mod:`repro.obs.diff`) both consume.

Sign conventions (fixed here so every consumer agrees):

* ``wns_gain`` / ``tns_gain`` — ``after − before`` summed over the
  transform's spans; slack grows toward zero, so **positive is
  better**.
* ``wirelength_gain`` — ``before − after`` summed; wirelength
  shrinks, so **positive is better** here too.

Loading goes through :func:`resolve_trace` / :func:`load_trace`,
which accept either a run directory or a direct path to a
``trace.jsonl`` — shared by ``trace-report``, ``trace-diff``,
``trace-export`` and ``fleet-report``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.tracer import read_trace

#: the span stream's file name inside a run directory
TRACE_FILE = "trace.jsonl"


class TraceNotFound(Exception):
    """No readable trace at the given path (wrong path or an untraced
    run)."""


def resolve_trace(path: str) -> str:
    """The ``trace.jsonl`` path behind ``path``.

    Accepts a run directory (looks for ``trace.jsonl`` inside it) or a
    direct path to the file itself; raises :class:`TraceNotFound`
    otherwise.
    """
    if os.path.isdir(path):
        candidate = os.path.join(path, TRACE_FILE)
        if not os.path.exists(candidate):
            raise TraceNotFound("%s has no %s" % (path, TRACE_FILE))
        return candidate
    if not os.path.exists(path):
        raise TraceNotFound("no trace at %s" % path)
    return path


def load_trace(path: str) -> List[dict]:
    """All valid span records behind a run dir or trace-file path."""
    return read_trace(resolve_trace(path))


def kernel_seconds(counters: Dict[str, int]) -> Dict[str, float]:
    """Per-kernel seconds hidden in ``profile.<kernel>.us`` counters."""
    out: Dict[str, float] = {}
    for key, value in counters.items():
        if key.startswith("profile.") and key.endswith(".us"):
            out[key[len("profile."):-len(".us")]] = value / 1e6
    return out


@dataclass
class PayoffRow:
    """Accumulated payoff of one ``(name, kind)`` across a whole run."""

    name: str
    kind: str
    invocations: int = 0
    accepts: int = 0
    rejects: int = 0
    seconds: float = 0.0
    wns_gain: float = 0.0
    tns_gain: float = 0.0
    wirelength_gain: float = 0.0
    statuses: List[int] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)

    def fold(self, record: dict) -> None:
        """Fold one span record of this transform into the row."""
        self.invocations += 1
        if record.get("ok", True):
            self.accepts += 1
        else:
            self.rejects += 1
        self.seconds += record.get("dt", 0.0)
        before = record.get("before", {})
        after = record.get("after", {})
        self.wns_gain += after.get("wns", 0.0) - before.get("wns", 0.0)
        self.tns_gain += after.get("tns", 0.0) - before.get("tns", 0.0)
        self.wirelength_gain += (before.get("wirelength", 0.0)
                                 - after.get("wirelength", 0.0))
        status = record.get("status")
        if status is not None and status not in self.statuses:
            self.statuses.append(status)
        for key, value in record.get("counters", {}).items():
            self.counters[key] = self.counters.get(key, 0) + value

    def rate(self, gain: float) -> float:
        """A per-second payoff rate (0 when the row took no time)."""
        return gain / self.seconds if self.seconds > 0 else 0.0

    @property
    def kernels(self) -> Dict[str, float]:
        """Seconds attributed to each profiled kernel in this row."""
        return kernel_seconds(self.counters)

    def to_json(self) -> dict:
        """The row as a plain-JSON object (``report.json`` schema)."""
        return {
            "name": self.name, "kind": self.kind,
            "invocations": self.invocations,
            "accepts": self.accepts, "rejects": self.rejects,
            "seconds": self.seconds,
            "wns_gain": self.wns_gain, "tns_gain": self.tns_gain,
            "wirelength_gain": self.wirelength_gain,
            "wns_per_second": self.rate(self.wns_gain),
            "tns_per_second": self.rate(self.tns_gain),
            "wirelength_per_second": self.rate(self.wirelength_gain),
            "statuses": list(self.statuses),
            "kernel_seconds": self.kernels,
            "counters": dict(sorted(self.counters.items())),
        }


@dataclass
class PayoffReport:
    """Per-transform payoff rows plus the run-level flow summary."""

    rows: List[PayoffRow]
    flow: Optional[dict] = None
    span_count: int = 0

    def row(self, name: str, kind: str = "transform") -> Optional[PayoffRow]:
        """The row for one transform, or None if it never ran."""
        for r in self.rows:
            if r.name == name and r.kind == kind:
                return r
        return None

    @property
    def total_seconds(self) -> float:
        """Summed wall seconds across all non-flow rows."""
        return sum(r.seconds for r in self.rows)

    def to_json(self) -> dict:
        """The whole report as one plain-JSON object."""
        return {
            "spans": self.span_count,
            "total_seconds": self.total_seconds,
            "flow": self.flow,
            "rows": [r.to_json() for r in self.rows],
        }

    def table(self) -> List[str]:
        """The payoff table as fixed-width text lines."""
        header = ("%-28s %-9s %4s %4s %4s %9s %9s %9s %11s %9s %11s"
                  % ("transform", "kind", "inv", "ok", "rej", "sec",
                     "d_wns", "d_tns", "d_wirelen", "wns/s", "wirelen/s"))
        lines = [header, "-" * len(header)]
        for r in self.rows:
            lines.append(
                "%-28s %-9s %4d %4d %4d %9.3f %9.2f %9.2f %11.1f %9.2f %11.1f"
                % (r.name[:28], r.kind, r.invocations, r.accepts,
                   r.rejects, r.seconds, r.wns_gain, r.tns_gain,
                   r.wirelength_gain, r.rate(r.wns_gain),
                   r.rate(r.wirelength_gain)))
        if self.flow is not None:
            lines.append("-" * len(header))
            lines.append(
                "%-28s %-9s %4d %4s %4s %9.3f %9.2f %9.2f %11.1f"
                % (self.flow["name"][:28], "flow", 1, "", "",
                   self.flow["seconds"], self.flow["wns_gain"],
                   self.flow["tns_gain"], self.flow["wirelength_gain"]))
        return lines


def analyze_trace(records: List[dict]) -> PayoffReport:
    """Fold a span-record stream into a :class:`PayoffReport`.

    Rows are keyed ``(name, kind)`` in first-appearance order; the
    enclosing ``flow`` span (there is at most one in a merged trace)
    becomes the report-level summary instead of a row.
    """
    rows: Dict[Tuple[str, str], PayoffRow] = {}
    order: List[Tuple[str, str]] = []
    flow: Optional[dict] = None
    for record in records:
        kind = record.get("kind", "transform")
        name = record.get("name", "?")
        if kind == "flow":
            before = record.get("before", {})
            after = record.get("after", {})
            flow = {
                "name": name,
                "seconds": record.get("dt", 0.0),
                "ok": record.get("ok", True),
                "before": dict(before),
                "after": dict(after),
                "wns_gain": (after.get("wns", 0.0)
                             - before.get("wns", 0.0)),
                "tns_gain": (after.get("tns", 0.0)
                             - before.get("tns", 0.0)),
                "wirelength_gain": (before.get("wirelength", 0.0)
                                    - after.get("wirelength", 0.0)),
            }
            continue
        key = (name, kind)
        row = rows.get(key)
        if row is None:
            row = rows[key] = PayoffRow(name=name, kind=kind)
            order.append(key)
        row.fold(record)
    return PayoffReport(rows=[rows[k] for k in order], flow=flow,
                        span_count=len(records))


def analyze_path(path: str) -> PayoffReport:
    """:func:`load_trace` + :func:`analyze_trace` in one call."""
    return analyze_trace(load_trace(path))


def write_report(report: PayoffReport, path: str) -> None:
    """Write a report's JSON form to ``path``."""
    with open(path, "w") as stream:
        json.dump(report.to_json(), stream, indent=2, sort_keys=False)
        stream.write("\n")
