"""Per-invocation spans: who ran, what it cost, what it moved.

A :class:`Span` is one transform/analyzer invocation seen from the
outside: name, kind, the cut status it ran at, wall time, the design
metrics (WNS/TNS/wirelength/cell count) immediately before and after,
and the *deltas* of every registered analyzer counter — how many
arrival recomputes the timer did, how many Steiner trees were rebuilt,
how many checkpoints/rollbacks the guard took, how many bytes persist
wrote — attributable to exactly this invocation.

The :class:`Tracer` is deliberately zero-dependency and observe-only:
it queries the design's own incremental analyzers (the same queries
the flow itself makes constantly), so an identical run with tracing
off computes exactly the same result.  Spans stream to
``trace.jsonl`` through :class:`TraceWriter`, which reuses the
CRC-wrapped line format of :mod:`repro.persist.journal` — a killed
process leaves at most one torn line, and a resumed process appends
to the same file, yielding one merged trace for the whole run.

Determinism contract (pinned by ``tests/obs``): everything in a span
except the two timestamp fields (``t0``, ``dt``) is a deterministic
function of the design, the seed, and the schedule.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro import _profile as profile
from repro.persist import io as storage
from repro.persist.journal import decode_line, encode_line

#: the metric keys captured before/after every span
METRIC_KEYS = ("wns", "tns", "wirelength", "cells")

#: span-record fields that are wall-clock, not deterministic
TIMESTAMP_KEYS = ("t0", "dt")

#: counter-key prefixes that carry wall-clock values (integer
#: microseconds) and are therefore exempt from the determinism
#: contract, like ``t0``/``dt``
WALLCLOCK_COUNTER_PREFIXES = (profile.PROFILE_PREFIX,)


def design_metrics(design) -> Dict[str, float]:
    """The Table 1 trajectory metrics at the design's current state."""
    return {
        "wns": design.timing.worst_slack(),
        "tns": design.timing.total_negative_slack(),
        "wirelength": design.total_wirelength(),
        "cells": design.icell_count(),
    }


def comparable(record: dict) -> dict:
    """A span record with its wall-clock fields stripped.

    Two seeded runs of the same flow produce identical ``comparable``
    sequences; only ``t0``/``dt`` and the ``profile.*`` kernel-timing
    counters (wall clock rendered as integer microseconds) may differ
    between them.
    """
    stripped = {k: v for k, v in record.items() if k not in TIMESTAMP_KEYS}
    counters = stripped.get("counters")
    if counters:
        kept = {k: v for k, v in counters.items()
                if not k.startswith(WALLCLOCK_COUNTER_PREFIXES)}
        if len(kept) != len(counters):
            stripped = dict(stripped)
            stripped["counters"] = kept
    return stripped


class CounterRegistry:
    """Named providers of monotonic integer counters.

    A provider is any zero-argument callable returning a mapping; only
    integer values are kept (floats are wall-clock accumulators, which
    would break the determinism contract).  The registry flattens all
    providers into one ``prefix.key`` namespace.
    """

    def __init__(self) -> None:
        self._providers: List[Tuple[str, Callable[[], Mapping]]] = []

    def add(self, prefix: str, provider: Callable[[], Mapping]) -> None:
        """Register a counter provider under ``prefix.``."""
        self._providers.append((prefix, provider))

    def snapshot(self) -> Dict[str, int]:
        """All providers flattened to one ``prefix.key`` → int map."""
        flat: Dict[str, int] = {}
        for prefix, provider in self._providers:
            for key, value in provider().items():
                if isinstance(value, bool) or not isinstance(value, int):
                    continue
                flat["%s.%s" % (prefix, key)] = value
        return flat

    @staticmethod
    def delta(before: Dict[str, int],
              after: Dict[str, int]) -> Dict[str, int]:
        """Non-zero counter movement between two snapshots."""
        return {key: value - before.get(key, 0)
                for key, value in after.items()
                if value != before.get(key, 0)}


@dataclass
class Span:
    """One traced invocation (see module docstring for the contract)."""

    seq: int
    name: str
    kind: str  # "transform" | "substrate" | "analyzer" | "flow"
    status: int
    t0: float
    dt: float = 0.0
    ok: bool = True
    before: Dict[str, float] = field(default_factory=dict)
    after: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None

    def to_record(self) -> dict:
        """The span as a plain-JSON trace record."""
        record = {
            "seq": self.seq, "name": self.name, "kind": self.kind,
            "status": self.status, "t0": self.t0, "dt": self.dt,
            "ok": self.ok, "before": self.before, "after": self.after,
            "counters": self.counters,
        }
        if self.error is not None:
            record["error"] = self.error
        return record

    @classmethod
    def from_record(cls, record: dict) -> "Span":
        """Rebuild a span from its trace record (inverse of
        :meth:`to_record`)."""
        return cls(seq=record["seq"], name=record["name"],
                   kind=record["kind"], status=record["status"],
                   t0=record["t0"], dt=record["dt"], ok=record["ok"],
                   before=dict(record["before"]),
                   after=dict(record["after"]),
                   counters=dict(record["counters"]),
                   error=record.get("error"))

    def delta(self, key: str) -> float:
        """After-minus-before movement of one metric."""
        return self.after.get(key, 0.0) - self.before.get(key, 0.0)


class TraceWriter:
    """Append-only ``trace.jsonl`` stream in the journal line format.

    Spans are telemetry, not recovery state, so appends flush but do
    not fsync — a kill loses at most the spans of the final buffered
    write, and a torn last line is dropped by :func:`read_trace`.
    With ``resume=True`` the writer continues an existing file: new
    sequence numbers start past the recorded spans and new timestamps
    are offset past the last recorded end time, so the merged file
    reads as one run.
    """

    def __init__(self, path: str, resume: bool = False) -> None:
        self.path = path
        self.count = 0
        self.t_base = 0.0
        if resume and os.path.exists(path):
            records, torn = _scan(path)
            self.count = len(records)
            self.t_base = max((r["t0"] + r["dt"] for r in records),
                              default=0.0)
            if torn:
                # drop the torn tail so appends stay parseable
                self._rewrite(records)
        else:
            with open(path, "w"):
                pass

    def append(self, record: dict) -> None:
        """Append one CRC-wrapped record and flush it to disk."""
        with open(self.path, "a") as stream:
            stream.write(encode_line(record) + "\n")
            stream.flush()
        self.count += 1

    def _rewrite(self, records: List[dict]) -> None:
        storage.atomic_write_text(
            self.path,
            "".join(encode_line(r) + "\n" for r in records),
            fsync=False)


def _scan(path: str) -> Tuple[List[dict], int]:
    with open(path, "r") as stream:
        lines = stream.read().splitlines()
    records, torn = [], 0
    for line in lines:
        if not line.strip():
            continue
        record = decode_line(line)
        if record is None:
            torn += 1
            continue
        records.append(record)
    return records, torn


def read_trace(path: str) -> List[dict]:
    """All valid span records of a ``trace.jsonl``, in file order.

    Torn or corrupt lines (a killed process's final write) are
    silently dropped — the CRC wrapper makes them detectable.
    """
    return _scan(path)[0]


class Tracer:
    """Record a span around every transform/analyzer invocation.

    The tracer holds the design (to sample metrics), a
    :class:`CounterRegistry` (the design's own timing and Steiner
    counters are pre-registered; scenarios add guard and persist
    providers), an in-memory span list, and an optional
    :class:`TraceWriter`.  Spans are appended — to both the list and
    the file — at span *end*, so a process killed mid-invocation
    records nothing for it, and the enclosing flow-level span of an
    interrupted run is written only by the process that finishes.
    """

    def __init__(self, design, writer: Optional[TraceWriter] = None,
                 registry: Optional[CounterRegistry] = None,
                 sink=None) -> None:
        self.design = design
        self.writer = writer
        self.counters = registry or CounterRegistry()
        self.counters.add("timing", design.timing.stats)
        self.counters.add("steiner", lambda: design.steiner.stats)
        # kernel wall-clock accounting (repro.obs.profile); the whole
        # prefix is stripped by comparable() — see
        # WALLCLOCK_COUNTER_PREFIXES
        self.counters.add("profile", profile.counters)
        if getattr(design, "core_image", None) is not None:
            self.counters.add("core", design.core_image.stats)
            akernel = getattr(design.timing, "_akernel", None)
            if akernel is not None:
                self.counters.add("core.sta", akernel.stats)
        #: optional :class:`repro.obs.sink.CounterSink` — the live
        #: cross-process metrics channel; published at every span end
        self.sink = sink
        self.spans: List[Span] = []
        self._seq = writer.count if writer is not None else 0
        self._t_base = writer.t_base if writer is not None else 0.0
        self._clock0 = time.perf_counter()

    def _now(self) -> float:
        return self._t_base + time.perf_counter() - self._clock0

    # -- span lifecycle ------------------------------------------------

    def begin(self, name: str, kind: str = "transform",
              status: Optional[int] = None) -> Span:
        """Open a span: capture before-metrics and the counter base."""
        return Span(
            seq=-1, name=name, kind=kind,
            status=self.design.status if status is None else status,
            t0=self._now(),
            before=design_metrics(self.design),
            counters=self.counters.snapshot())

    def end(self, span: Span, ok: bool = True,
            error: Optional[str] = None) -> Span:
        """Close a span: record deltas, stream it, feed the sink."""
        # seq is allocated at *end* — the moment the span is recorded —
        # so file order equals seq order and a resumed process's spans
        # continue the dead segments' numbering without holes (a killed
        # process's in-flight spans never consumed a number).
        span.seq = self._seq
        self._seq += 1
        span.dt = self._now() - span.t0
        span.after = design_metrics(self.design)
        span.counters = CounterRegistry.delta(
            span.counters, self.counters.snapshot())
        span.ok = ok
        if error is not None:
            span.error = error
        self.spans.append(span)
        record = span.to_record()
        if self.writer is not None:
            self.writer.append(record)
        if self.sink is not None:
            self.sink.note_span(record)
            self.sink.publish(self.counters.snapshot(),
                              status=self.design.status,
                              final=(span.kind == "flow"))
        return span

    @contextmanager
    def span(self, name: str, kind: str = "transform",
             status: Optional[int] = None):
        """Context manager form; set ``sp.ok = False`` inside to mark
        a failed invocation.  Exceptions are recorded and re-raised."""
        span = self.begin(name, kind, status)
        try:
            yield span
        except BaseException as exc:
            self.end(span, ok=False, error=type(exc).__name__)
            raise
        else:
            self.end(span, ok=span.ok, error=span.error)

    # -- views ---------------------------------------------------------

    def records(self) -> List[dict]:
        """Every span record of the run, in order.

        With a writer, this is the merged on-disk stream — a resumed
        process sees the dead segments' spans ahead of its own; in
        memory-only mode it is just this process's spans.
        """
        if self.writer is not None:
            return read_trace(self.writer.path)
        return [span.to_record() for span in self.spans]

    def __repr__(self) -> str:
        return "<Tracer %d spans%s>" % (
            len(self.spans),
            " -> " + self.writer.path if self.writer is not None else "")
