"""Fixed-bucket latency histograms for the serve fleet.

A :class:`LatencyHistogram` is the smallest thing that can answer
"what does submit→lease latency look like across the fleet": a fixed
ladder of log-spaced upper bounds (Prometheus ``le`` semantics —
each bucket counts observations ``<= bound``, rendered cumulatively),
a total count, and a running sum.  Fixed buckets make histograms
*mergeable*: fleet-wide aggregation (``repro fleet-report``) and
multi-process export just add counts bucket by bucket, which no
quantile sketch does without error bars.

Quantiles (:meth:`quantile`) interpolate linearly inside the bucket
that crosses the requested rank — the same estimate Prometheus's
``histogram_quantile`` computes server-side; ``/healthz`` publishes
p50/p99 from the same data so an operator without a Prometheus stack
sees the identical numbers.

The default ladder spans 5 ms to 5 minutes, which covers the three
serve stages it was built for (submit→lease queue wait, lease→start
spawn latency, and whole-job run time) at both test and real scale.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: default bucket upper bounds in seconds (log-spaced, 5 ms – 5 min)
DEFAULT_BOUNDS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0)


class LatencyHistogram:
    """Counts of observations in a fixed ladder of ``le`` buckets."""

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("bucket bounds must be strictly increasing")
        #: per-bucket (non-cumulative) counts; index len(bounds) is the
        #: +Inf overflow bucket
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency observation."""
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if seconds <= bound:
                idx = i
                break
        self.counts[idx] += 1
        self.total += 1
        self.sum += seconds

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ending with ``+Inf``.

        This is exactly the Prometheus ``_bucket`` series shape.
        """
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def quantile(self, q: float) -> Optional[float]:
        """Estimated q-quantile (0 < q <= 1), or None when empty.

        Linear interpolation inside the crossing bucket, like
        Prometheus ``histogram_quantile``; observations in the
        overflow bucket report the largest finite bound.
        """
        if self.total == 0:
            return None
        rank = q * self.total
        running = 0
        lower = 0.0
        for bound, count in zip(self.bounds, self.counts):
            if count and running + count >= rank:
                frac = (rank - running) / count
                return lower + (bound - lower) * frac
            running += count
            lower = bound
        return self.bounds[-1]

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram (same bounds) into this one."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different "
                             "bucket bounds")
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total += other.total
        self.sum += other.sum

    def to_json(self) -> dict:
        """The histogram as a plain-JSON object."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.total,
            "sum": self.sum,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
        }

    @classmethod
    def from_json(cls, state: dict) -> "LatencyHistogram":
        """Rebuild a histogram from :meth:`to_json` output."""
        hist = cls(bounds=state["bounds"])
        hist.counts = list(state["counts"])
        hist.total = state["count"]
        hist.sum = state["sum"]
        return hist

    def __repr__(self) -> str:
        return ("<LatencyHistogram n=%d sum=%.3fs p50=%s p99=%s>"
                % (self.total, self.sum, self.quantile(0.5),
                   self.quantile(0.99)))


def quantile_gauges(hists: Dict[str, "LatencyHistogram"]) -> Dict[str, float]:
    """``<stage>_p50`` / ``<stage>_p99`` gauges for ``/healthz``.

    Stages with no observations yet are omitted rather than reported
    as zero — an empty histogram has no latency, not a great one.
    """
    out: Dict[str, float] = {}
    for stage, hist in sorted(hists.items()):
        p50 = hist.quantile(0.50)
        p99 = hist.quantile(0.99)
        if p50 is not None:
            out["%s_p50" % stage] = p50
        if p99 is not None:
            out["%s_p99" % stage] = p99
    return out
