"""Cut-status timeline: the data behind the paper's Figure 5.

Aggregates a span stream by cut status: for each status at which at
least one span ran, how many invocations fired, how long they took,
where the trajectory metrics stood before the first and after the last
of them, and how much analyzer work (timer recomputes, Steiner
rebuilds, guard rollbacks) they cost.  The result is the per-status
table the TPS narrative describes — transforms interleaved with
placement refinement as the cut status sweeps 0→100 — printable from
the CLI with ``--trace``.

Pure: operates on span record dicts (see :mod:`repro.obs.tracer`),
never touches the design or the filesystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: counters surfaced as timeline columns (full registry stays in spans)
COLUMN_COUNTERS = (
    ("timing.arrival_recomputes", "arrivals"),
    ("steiner.misses", "steiner"),
    ("guard.rollbacks", "rollbacks"),
)


@dataclass
class StatusRow:
    """All spans that ran at one cut status, folded together."""

    status: int
    spans: int = 0
    seconds: float = 0.0
    failures: int = 0
    before: Dict[str, float] = field(default_factory=dict)
    after: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)

    def fold(self, record: dict) -> None:
        """Accumulate one span record into this status row."""
        if not self.spans:
            self.before = dict(record["before"])
        self.after = dict(record["after"])
        self.spans += 1
        self.seconds += record["dt"]
        if not record["ok"]:
            self.failures += 1
        for key, value in record["counters"].items():
            self.counters[key] = self.counters.get(key, 0) + value


@dataclass
class CutTimeline:
    """Per-status aggregation of one run's span stream."""

    rows: List[StatusRow] = field(default_factory=list)
    #: metrics after the outermost span — the FlowReport endpoint
    final: Dict[str, float] = field(default_factory=dict)
    total_spans: int = 0
    total_seconds: float = 0.0

    @classmethod
    def from_records(cls, records: List[dict]) -> "CutTimeline":
        """Aggregate span records (file order) into status rows.

        Flow-level spans wrap the whole run, so they set ``final`` but
        are excluded from the per-status rows; everything else folds
        into the row of the status it ran at.  On a resumed run the
        merged trace holds one flow span (only the finishing process
        writes one) whose "after" is the run's true endpoint.
        """
        timeline = cls()
        by_status: Dict[int, StatusRow] = {}
        for record in records:
            if record["kind"] == "flow":
                timeline.final = dict(record["after"])
                continue
            timeline.total_spans += 1
            timeline.total_seconds += record["dt"]
            row = by_status.get(record["status"])
            if row is None:
                row = by_status[record["status"]] = StatusRow(
                    status=record["status"])
            row.fold(record)
        timeline.rows = [by_status[s] for s in sorted(by_status)]
        if not timeline.final and timeline.rows:
            timeline.final = dict(timeline.rows[-1].after)
        return timeline

    def row(self, status: int) -> Optional[StatusRow]:
        """The row of one cut status, or None if never visited."""
        for candidate in self.rows:
            if candidate.status == status:
                return candidate
        return None

    def lines(self) -> List[str]:
        """The Figure-5-style table, one line per cut status."""
        header = ("status  spans      sec        wns     wirelen"
                  "   cells   arrivals    steiner  rollbacks")
        out = [header, "-" * len(header)]
        for row in self.rows:
            cells = ["%6d" % row.status,
                     "%6d" % row.spans,
                     "%8.3f" % row.seconds,
                     "%10.3f" % row.after.get("wns", 0.0),
                     "%11.1f" % row.after.get("wirelength", 0.0),
                     "%7d" % int(row.after.get("cells", 0))]
            for key, _ in COLUMN_COUNTERS:
                cells.append("%10d" % row.counters.get(key, 0))
            line = " ".join(cells)
            if row.failures:
                line += "  (%d failed)" % row.failures
            out.append(line)
        out.append("%6s %6d %8.3f   final wns %.3f  wirelen %.1f"
                   "  cells %d" % (
                       "total", self.total_spans, self.total_seconds,
                       self.final.get("wns", 0.0),
                       self.final.get("wirelength", 0.0),
                       int(self.final.get("cells", 0))))
        return out
