"""Flow telemetry: spans, counters, timelines, Chrome export.

The observability layer of the reproduction — see
``docs/internals.md`` §8.  Everything here observes the flow without
steering it: a run with tracing on computes bit-identical results to
the same run with tracing off.
"""

from repro.obs.chrome import chrome_events, write_chrome_trace
from repro.obs.sink import CounterSink, read_sink, sum_counters
from repro.obs.timeline import CutTimeline, StatusRow
from repro.obs.tracer import (
    METRIC_KEYS,
    CounterRegistry,
    Span,
    TraceWriter,
    Tracer,
    comparable,
    design_metrics,
    read_trace,
)

__all__ = [
    "METRIC_KEYS",
    "CounterRegistry",
    "CounterSink",
    "CutTimeline",
    "Span",
    "StatusRow",
    "TraceWriter",
    "Tracer",
    "chrome_events",
    "comparable",
    "design_metrics",
    "read_sink",
    "read_trace",
    "sum_counters",
    "write_chrome_trace",
]
