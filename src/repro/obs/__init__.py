"""Flow telemetry: spans, counters, timelines, analytics, export.

The observability layer of the reproduction — see
``docs/internals.md`` §8 (spans/sinks) and §11 (the analytics built
on them: payoff accounting, trace-diff triage, kernel profiling,
latency histograms).  Everything here observes the flow without
steering it: a run with tracing on computes bit-identical results to
the same run with tracing off — the wall-clock ``profile.*`` counters
are excluded from determinism comparisons by :func:`comparable` for
exactly that reason.
"""

from repro.obs.analyze import (
    PayoffReport,
    PayoffRow,
    TraceNotFound,
    analyze_path,
    analyze_trace,
    load_trace,
    resolve_trace,
    write_report,
)
from repro.obs.chrome import chrome_events, write_chrome_trace
from repro.obs.diff import DiffConfig, Finding, TraceDiff, diff_traces
from repro.obs.hist import (
    DEFAULT_BOUNDS,
    LatencyHistogram,
    quantile_gauges,
)
from repro.obs.sink import CounterSink, read_sink, sum_counters
from repro.obs.timeline import CutTimeline, StatusRow
from repro.obs.tracer import (
    METRIC_KEYS,
    CounterRegistry,
    Span,
    TraceWriter,
    Tracer,
    comparable,
    design_metrics,
    read_trace,
)

__all__ = [
    "DEFAULT_BOUNDS",
    "METRIC_KEYS",
    "CounterRegistry",
    "CounterSink",
    "CutTimeline",
    "DiffConfig",
    "Finding",
    "LatencyHistogram",
    "PayoffReport",
    "PayoffRow",
    "Span",
    "StatusRow",
    "TraceDiff",
    "TraceNotFound",
    "TraceWriter",
    "Tracer",
    "analyze_path",
    "analyze_trace",
    "chrome_events",
    "comparable",
    "design_metrics",
    "diff_traces",
    "load_trace",
    "quantile_gauges",
    "read_sink",
    "read_trace",
    "resolve_trace",
    "sum_counters",
    "write_chrome_trace",
    "write_report",
]
