"""Cross-run trace-diff: regression triage between two span streams.

Given a baseline trace A and a candidate trace B (two ``trace.jsonl``
streams, usually two runs of the same flow at the same seed),
:func:`diff_traces` aligns them and classifies per-transform drift.

**Alignment** follows the span identity the tracer records: spans
aggregate per ``(name, kind)`` — the transform — and, inside each
transform, per cut ``status`` (the flow's level/step position).  Two
seeded runs of the same configuration produce identical aggregates
for every deterministic dimension, so any drift there is a real
behavioural change, not noise.

**Drift dimensions**, each with configurable thresholds
(:class:`DiffConfig`):

``missing_span`` / ``new_span``
    a transform present in only one run — the flow shape changed.
``count_drift``
    invocation counts diverged (in total or at some cut status).
    Deterministic.
``less_effective``
    the transform's summed metric payoff (ΔWNS / ΔTNS / Δwirelength,
    sign conventions of :mod:`repro.obs.analyze`) dropped by more
    than a floor *and* more than a fraction of its baseline payoff.
    Deterministic.  Floors are scale-free: a share of the baseline
    run's total absolute payoff per metric.
``counter_blowup``
    a deterministic analyzer counter grew past ``counter_ratio``×
    with a real absolute magnitude (no flag on 3 → 7).
``slower`` / ``kernel_slower``
    wall-seconds dimensions — the only non-deterministic ones, so
    both require a ratio *and* an absolute floor, making them robust
    to scheduler noise on identical runs.  ``kernel_slower`` reads
    the ``profile.<kernel>.us`` counters, attributing a slowdown to
    a specific kernel.

The verdict is machine-readable (:meth:`TraceDiff.to_json`) and drives
``python -m repro trace-diff``'s exit code: 1 when any regression
survives the thresholds, 0 otherwise.  Improvements (faster, more
effective) are reported as notes, never as regressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.analyze import PayoffReport, PayoffRow, analyze_trace

#: metric → (gain attribute, human unit) handled by the
#: effectiveness dimension
_GAIN_METRICS = (("wns", "wns_gain"), ("tns", "tns_gain"),
                 ("wirelength", "wirelength_gain"))


@dataclass
class DiffConfig:
    """Thresholds of the drift classifier (see module docstring)."""

    #: invocation-count ratio beyond which count drift is flagged
    count_ratio: float = 1.5
    #: minimum absolute invocation-count change (no flag on 1 → 2)
    count_min: int = 2
    #: wall-seconds ratio beyond which a transform counts as slower
    slow_ratio: float = 2.0
    #: minimum candidate wall seconds before ``slower`` can fire
    slow_min_seconds: float = 0.25
    #: fraction of baseline payoff a transform may lose before
    #: ``less_effective`` fires
    effect_ratio: float = 0.5
    #: per-metric payoff floor, as a share of the baseline run's total
    #: absolute payoff in that metric
    effect_min_share: float = 0.10
    #: deterministic-counter growth ratio for ``counter_blowup``
    counter_ratio: float = 2.0
    #: minimum candidate counter value before blowup can fire
    counter_min: int = 1000
    #: ``profile.*.us`` growth ratio for ``kernel_slower``
    kernel_ratio: float = 2.0
    #: minimum candidate kernel seconds before ``kernel_slower`` fires
    kernel_min_seconds: float = 0.25

    def to_json(self) -> dict:
        """The thresholds as a plain-JSON object."""
        return {
            "count_ratio": self.count_ratio,
            "count_min": self.count_min,
            "slow_ratio": self.slow_ratio,
            "slow_min_seconds": self.slow_min_seconds,
            "effect_ratio": self.effect_ratio,
            "effect_min_share": self.effect_min_share,
            "counter_ratio": self.counter_ratio,
            "counter_min": self.counter_min,
            "kernel_ratio": self.kernel_ratio,
            "kernel_min_seconds": self.kernel_min_seconds,
        }


@dataclass
class Finding:
    """One classified drift observation on one transform."""

    name: str
    kind: str
    dimension: str
    severity: str  # "regression" | "note"
    detail: str
    baseline: float = 0.0
    candidate: float = 0.0

    def to_json(self) -> dict:
        """The finding as a plain-JSON object."""
        return {
            "name": self.name, "kind": self.kind,
            "dimension": self.dimension, "severity": self.severity,
            "detail": self.detail,
            "baseline": self.baseline, "candidate": self.candidate,
        }


@dataclass
class TraceDiff:
    """The classified drift between two runs."""

    findings: List[Finding] = field(default_factory=list)
    config: DiffConfig = field(default_factory=DiffConfig)

    @property
    def regressions(self) -> List[Finding]:
        """Only the findings that fail the run."""
        return [f for f in self.findings if f.severity == "regression"]

    @property
    def flagged(self) -> List[str]:
        """Transform names with at least one regression, sorted."""
        return sorted({f.name for f in self.regressions})

    @property
    def verdict(self) -> str:
        """``"regression"`` or ``"ok"``."""
        return "regression" if self.regressions else "ok"

    def to_json(self) -> dict:
        """The whole diff as one plain-JSON object."""
        return {
            "verdict": self.verdict,
            "flagged": self.flagged,
            "regressions": len(self.regressions),
            "findings": [f.to_json() for f in self.findings],
            "thresholds": self.config.to_json(),
        }

    def lines(self) -> List[str]:
        """Human-readable summary lines, regressions first."""
        out = ["verdict: %s" % self.verdict]
        if self.flagged:
            out.append("flagged: %s" % ", ".join(self.flagged))
        for f in sorted(self.findings,
                        key=lambda f: (f.severity != "regression", f.name)):
            out.append("  [%s] %s/%s %s: %s"
                       % (f.severity, f.name, f.kind, f.dimension,
                          f.detail))
        return out


def _status_counts(records: List[dict]) -> Dict[Tuple[str, str],
                                                Dict[int, int]]:
    """Per-transform invocation counts broken down by cut status."""
    table: Dict[Tuple[str, str], Dict[int, int]] = {}
    for record in records:
        if record.get("kind") == "flow":
            continue
        key = (record.get("name", "?"), record.get("kind", "transform"))
        per = table.setdefault(key, {})
        status = record.get("status", 0)
        per[status] = per.get(status, 0) + 1
    return table


def _total_abs_gains(report: PayoffReport) -> Dict[str, float]:
    """Total absolute payoff per metric across a baseline report."""
    totals = {metric: 0.0 for metric, _attr in _GAIN_METRICS}
    for row in report.rows:
        for metric, attr in _GAIN_METRICS:
            totals[metric] += abs(getattr(row, attr))
    return totals


def _diff_counts(out: List[Finding], cfg: DiffConfig,
                 ra: PayoffRow, rb: PayoffRow,
                 sa: Dict[int, int], sb: Dict[int, int]) -> None:
    a, b = ra.invocations, rb.invocations
    if abs(b - a) >= cfg.count_min and (
            b >= a * cfg.count_ratio or a >= b * cfg.count_ratio):
        drifted = sorted(set(sa) | set(sb))
        at = [s for s in drifted if sa.get(s, 0) != sb.get(s, 0)]
        out.append(Finding(
            ra.name, ra.kind, "count_drift", "regression",
            "invocations %d -> %d (drift at statuses %s)"
            % (a, b, at), a, b))


def _diff_effectiveness(out: List[Finding], cfg: DiffConfig,
                        ra: PayoffRow, rb: PayoffRow,
                        floors: Dict[str, float]) -> None:
    for metric, attr in _GAIN_METRICS:
        ga = getattr(ra, attr)
        gb = getattr(rb, attr)
        drop = ga - gb
        floor = floors[metric] * cfg.effect_min_share
        if floor <= 0.0:
            continue
        if drop > floor and drop > cfg.effect_ratio * abs(ga):
            out.append(Finding(
                ra.name, ra.kind, "less_effective", "regression",
                "%s payoff %.2f -> %.2f" % (metric, ga, gb), ga, gb))
        elif -drop > floor and -drop > cfg.effect_ratio * abs(ga):
            out.append(Finding(
                ra.name, ra.kind, "more_effective", "note",
                "%s payoff %.2f -> %.2f" % (metric, ga, gb), ga, gb))


def _diff_counters(out: List[Finding], cfg: DiffConfig,
                   ra: PayoffRow, rb: PayoffRow) -> None:
    for key in sorted(set(ra.counters) | set(rb.counters)):
        if key.startswith("profile."):
            continue  # wall clock: the kernel dimension's job
        a = ra.counters.get(key, 0)
        b = rb.counters.get(key, 0)
        if b >= cfg.counter_min and b >= a * cfg.counter_ratio:
            out.append(Finding(
                ra.name, ra.kind, "counter_blowup", "regression",
                "%s %d -> %d" % (key, a, b), a, b))


def _diff_wallclock(out: List[Finding], cfg: DiffConfig,
                    ra: PayoffRow, rb: PayoffRow) -> None:
    if (rb.seconds >= cfg.slow_min_seconds
            and rb.seconds >= ra.seconds * cfg.slow_ratio):
        out.append(Finding(
            ra.name, ra.kind, "slower", "regression",
            "%.3fs -> %.3fs" % (ra.seconds, rb.seconds),
            ra.seconds, rb.seconds))
    elif (ra.seconds >= cfg.slow_min_seconds
            and ra.seconds >= rb.seconds * cfg.slow_ratio):
        out.append(Finding(
            ra.name, ra.kind, "faster", "note",
            "%.3fs -> %.3fs" % (ra.seconds, rb.seconds),
            ra.seconds, rb.seconds))
    ka = ra.kernels
    kb = rb.kernels
    for kernel in sorted(set(ka) | set(kb)):
        a = ka.get(kernel, 0.0)
        b = kb.get(kernel, 0.0)
        if (b >= cfg.kernel_min_seconds and b >= a * cfg.kernel_ratio):
            out.append(Finding(
                ra.name, ra.kind, "kernel_slower", "regression",
                "%s %.3fs -> %.3fs" % (kernel, a, b), a, b))


def diff_reports(report_a: PayoffReport, report_b: PayoffReport,
                 status_a: Dict[Tuple[str, str], Dict[int, int]],
                 status_b: Dict[Tuple[str, str], Dict[int, int]],
                 config: Optional[DiffConfig] = None) -> TraceDiff:
    """Classify drift between two analyzed runs (A = baseline)."""
    cfg = config or DiffConfig()
    findings: List[Finding] = []
    rows_a = {(r.name, r.kind): r for r in report_a.rows}
    rows_b = {(r.name, r.kind): r for r in report_b.rows}
    floors = _total_abs_gains(report_a)

    for key, ra in rows_a.items():
        if key not in rows_b:
            findings.append(Finding(
                ra.name, ra.kind, "missing_span", "regression",
                "ran %d times in baseline, absent in candidate"
                % ra.invocations, ra.invocations, 0))
    for key, rb in rows_b.items():
        if key not in rows_a:
            findings.append(Finding(
                rb.name, rb.kind, "new_span", "regression",
                "absent in baseline, ran %d times in candidate"
                % rb.invocations, 0, rb.invocations))

    for key, ra in rows_a.items():
        rb = rows_b.get(key)
        if rb is None:
            continue
        _diff_counts(findings, cfg, ra, rb,
                     status_a.get(key, {}), status_b.get(key, {}))
        _diff_effectiveness(findings, cfg, ra, rb, floors)
        _diff_counters(findings, cfg, ra, rb)
        _diff_wallclock(findings, cfg, ra, rb)
    return TraceDiff(findings=findings, config=cfg)


def diff_traces(records_a: List[dict], records_b: List[dict],
                config: Optional[DiffConfig] = None) -> TraceDiff:
    """Analyze and classify drift between two raw span streams."""
    return diff_reports(analyze_trace(records_a),
                        analyze_trace(records_b),
                        _status_counts(records_a),
                        _status_counts(records_b),
                        config)
