"""Export a span stream as Chrome trace-event JSON.

``chrome://tracing`` (or Perfetto's legacy loader) accepts an object
with a ``traceEvents`` array.  Each span becomes one complete ("X")
event with microsecond timestamps; the span's cut status, metrics and
counter deltas ride along in ``args`` so the tooltip shows the full
invocation.  WNS and wirelength are additionally emitted as counter
("C") series, which the viewer renders as stacked trajectory tracks —
the Figure 5 picture, zoomable.
"""

from __future__ import annotations

import json
from typing import List

#: metric series emitted as Chrome counter tracks
COUNTER_TRACKS = ("wns", "wirelength")


def chrome_events(records: List[dict]) -> List[dict]:
    """Trace-event dicts for one run's span records."""
    events: List[dict] = [
        {"ph": "M", "name": "process_name", "pid": 1, "tid": 1,
         "args": {"name": "repro flow"}},
    ]
    for record in records:
        us0 = record["t0"] * 1e6
        events.append({
            "ph": "X", "name": record["name"],
            "cat": record["kind"],
            "pid": 1, "tid": 1,
            "ts": us0, "dur": record["dt"] * 1e6,
            "args": {
                "status": record["status"],
                "ok": record["ok"],
                "before": record["before"],
                "after": record["after"],
                "counters": record["counters"],
            },
        })
        for track in COUNTER_TRACKS:
            if track in record["after"]:
                events.append({
                    "ph": "C", "name": track, "pid": 1, "tid": 1,
                    "ts": us0 + record["dt"] * 1e6,
                    "args": {track: record["after"][track]},
                })
    return events


def write_chrome_trace(records: List[dict], path: str) -> int:
    """Write the trace-event JSON file; returns the event count."""
    events = chrome_events(records)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w") as stream:
        json.dump(payload, stream)
    return len(events)
