"""Kernel profiling: cheap wall-clock accounting of the hot kernels.

Spans (:mod:`repro.obs.tracer`) answer "which *transform* was slow";
this module answers the next question down — "which *kernel* inside
it".  Both compute cores instrument the same hot paths:

====================  =================================================
Kernel key            Where it is timed
====================  =================================================
``quad.assemble``     global quadratic-placement system assembly — the
                      object-graph net loop in
                      :mod:`repro.placement.quadratic` and its array
                      twin :func:`repro.core.quad.assemble_system`
``quad.dense``        the dense per-bin refinement assembly
                      (:func:`repro.core.quad.assemble_dense` and the
                      object path in
                      :mod:`repro.placement.quadratic_refine`)
``sta.sweep``         one incremental-STA flush — the levelized
                      frontier sweep of :mod:`repro.timing.engine`
                      (object) or :mod:`repro.core.sta` (array)
``bins.rebuild``      a full bin-grid occupancy rebuild
                      (``repro.image.grid.BinGrid._rebuild``)
``steiner.build``     one Steiner-tree construction
                      (:func:`repro.wirelength.steiner.build_steiner`)
====================  =================================================

The accumulator is a process-global table of ``key → (calls,
seconds)``.  Its published counters are *integers* so they flow
through :class:`~repro.obs.tracer.CounterRegistry` (which drops
floats) into span counter deltas, the live sink, and ``/metrics`` as
``profile.<kernel>.calls`` / ``profile.<kernel>.us`` — which is
exactly what lets ``repro trace-diff`` attribute a transform slowdown
to a kernel instead of guessing.

Microseconds are wall clock, so every ``profile.*`` counter is exempt
from the span determinism contract: :func:`repro.obs.comparable`
strips the whole prefix, the same way it strips ``t0``/``dt``.

The hooks are deliberately branch-cheap — two ``perf_counter`` calls
and one dict update per kernel invocation, a few hundred nanoseconds
against kernels that run for micro- to milliseconds.  The measured
budget (``BENCH_trace.json``) is ≤2% on a traced Des3 TPS run.
``enable(False)`` turns the hooks into near-no-ops for A/B overhead
measurement; production leaves them on.

The implementation lives in :mod:`repro._profile` — a dependency-free
leaf module the hot kernels can import without pulling the whole
observability/persistence stack into a circular import; this module
is its public face and shares its process-global state.
"""

from __future__ import annotations

from repro._profile import (
    PROFILE_PREFIX,
    begin,
    counters,
    enable,
    enabled,
    end,
    reset,
    seconds_by_kernel,
)

__all__ = [
    "PROFILE_PREFIX",
    "begin",
    "counters",
    "enable",
    "enabled",
    "end",
    "reset",
    "seconds_by_kernel",
]
