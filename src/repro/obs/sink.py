"""A file-backed live-counter sink for cross-process aggregation.

A flow runs in one process; whoever wants to watch it — the
``repro.serve`` supervisor rendering ``/metrics``, or a human with
``cat`` — runs in another.  :class:`CounterSink` bridges the two with
the simplest durable channel available: a single small JSON file,
rewritten atomically (temp file + ``os.replace``) on every publish, so
a reader never sees a torn document and a crashed writer leaves the
last complete publish behind.

The sink document carries the cumulative :class:`CounterRegistry`
snapshot, a summary of the spans recorded so far (count, wall seconds,
per-kind breakdown, the last span's name and ``after`` metrics), and
the design's cut status — everything the server needs to render live
per-worker metrics without touching the worker's memory.

Publishing is observe-only telemetry, exactly like spans: the sink
file plays no part in resume, and a run with a sink attached computes
bit-identical results to one without.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

from repro.persist import io as storage

#: format tag of the sink document (bump on incompatible change)
SINK_FORMAT = "repro-counter-sink"
SINK_VERSION = 1


class CounterSink:
    """Publish live counters + span summaries to one JSON file.

    ``min_interval`` rate-limits rewrites: publishes closer together
    than this many seconds are dropped (except ``final=True``, which
    always lands) so a flurry of sub-millisecond spans does not turn
    the sink into a write amplifier.
    """

    def __init__(self, path: str, labels: Optional[Dict[str, str]] = None,
                 min_interval: float = 0.0) -> None:
        self.path = path
        #: static identity of the publishing process (job id, flow...)
        self.labels = dict(labels or {})
        self.min_interval = min_interval
        self._last_publish = 0.0
        self._spans = 0
        self._span_seconds = 0.0
        self._by_kind: Dict[str, int] = {}
        self._last_span: Optional[dict] = None

    # -- span accounting (fed by Tracer.end) ---------------------------

    def note_span(self, record: dict) -> None:
        """Fold one finished span record into the running summary."""
        self._spans += 1
        self._span_seconds += record.get("dt", 0.0)
        kind = record.get("kind", "?")
        self._by_kind[kind] = self._by_kind.get(kind, 0) + 1
        self._last_span = {"name": record.get("name"),
                           "kind": kind,
                           "status": record.get("status"),
                           "after": record.get("after", {})}

    # -- publishing ----------------------------------------------------

    def publish(self, counters: Dict[str, int], status: int = 0,
                final: bool = False) -> bool:
        """Atomically rewrite the sink file; returns True if written."""
        now = time.monotonic()
        if (not final and self.min_interval > 0.0
                and now - self._last_publish < self.min_interval):
            return False
        self._last_publish = now
        document = {
            "format": SINK_FORMAT,
            "version": SINK_VERSION,
            "labels": self.labels,
            "status": status,
            "final": final,
            "counters": dict(counters),
            "spans": {"total": self._spans,
                      "seconds": self._span_seconds,
                      "by_kind": dict(self._by_kind),
                      "last": self._last_span},
            "updated": time.time(),
        }
        # fsync=False: observe-only telemetry — atomic so readers
        # never see a torn document, but a lost final publish is fine
        storage.atomic_write_json(
            self.path, document, fsync=False,
            tmp_suffix=".%d.tmp" % os.getpid())
        return True


def read_sink(path: str) -> Optional[dict]:
    """The last complete sink document at ``path``, or None.

    Missing, partial, or foreign files read as None — a watcher must
    tolerate a worker that has not published yet.
    """
    try:
        with open(path, "r") as stream:
            document = json.load(stream)
    except (OSError, ValueError):
        return None
    if (not isinstance(document, dict)
            or document.get("format") != SINK_FORMAT):
        return None
    return document


def sum_counters(documents: List[dict]) -> Dict[str, int]:
    """Pointwise sum of the ``counters`` maps of many sink documents."""
    total: Dict[str, int] = {}
    for document in documents:
        for key, value in document.get("counters", {}).items():
            if isinstance(value, bool) or not isinstance(value, int):
                continue
            total[key] = total.get(key, 0) + value
    return total
