"""Ablation (section 4.1): the detailed placement transform.

DetailedPlaceOpt runs after legalization (window swaps and
permutations on exact locations).  Measure its wirelength contribution
on top of partition+reflow+legalize.
"""

from conftest import BENCH_SCALE, publish

from repro import build_des_design
from repro.placement import DetailedPlaceOpt, Partitioner, Reflow, legalize_rows
from repro.placement.legalize import check_legal


def run_pair(library):
    out = {}
    for label, use in (("without", False), ("with", True)):
        design = build_des_design("Des2", library, scale=BENCH_SCALE)
        part = Partitioner(design, seed=9)
        reflow = Reflow(part)
        while not part.done:
            part.cut()
            reflow.run()
        legalize_rows(design)
        moves = 0
        if use:
            moves = DetailedPlaceOpt(design, legal_mode=True,
                                     seed=9).run()
        out[label] = (design.total_wirelength(), moves,
                      len(check_legal(design)))
    return out


def test_detailed_placement(benchmark, library):
    out = benchmark.pedantic(run_pair, args=(library,),
                             rounds=1, iterations=1)
    lines = ["Detailed placement ablation (Des2 at scale %g)"
             % BENCH_SCALE,
             "%-8s %12s %8s %10s" % ("variant", "wirelength",
                                     "moves", "illegal")]
    for label, (wl, moves, illegal) in out.items():
        lines.append("%-8s %12.0f %8d %10d" % (label, wl, moves,
                                               illegal))
    publish("detailed_ablation.txt", "\n".join(lines) + "\n")

    wl_without, _m0, _i0 = out["without"]
    wl_with, moves, illegal = out["with"]
    assert wl_with <= wl_without  # strict improvement or no-op
    assert illegal == 0           # legality preserved in legal_mode
