"""Guarded-execution and persistence overhead: checkpoints must be
near-free.

The guard wraps every transform invocation in a checkpoint + invariant
check (see ``repro.guard``).  For the robustness machinery to be
left on by default it has to stay well inside the noise floor of a
flow run; the budget here is 15% wall-clock on the processor workload
preset, with bit-identical results.

The persistence layer additionally writes a snapshot at every
transform boundary of a durable run.  ``test_persist_snapshot_bytes``
runs the same TPS flow on the largest DES preset once per snapshot
mode and reports bytes written and wall time per milestone —
``BENCH_persist.json`` — with the tentpole acceptance bar inline:
delta mode must cut snapshot bytes at least 3x while producing a
bit-identical report.
"""

import json

from conftest import BENCH_SCALE, publish, stopwatch

from repro import GuardConfig, TPSScenario, make_design
from repro.persist import FlowPersist, Journal, PersistConfig, RunDir
from repro.scenario import TPSConfig
from repro.scenario.report import report_state
from repro.workloads import ProcessorParams, processor_partition
from repro.workloads.presets import build_des_design

_PARAMS = ProcessorParams(n_stages=2, regs_per_stage=10,
                          gates_per_stage=150, seed=11)


def run_once(library, guard):
    netlist = processor_partition(_PARAMS, library)
    design = make_design(netlist, library, cycle_time=1600.0,
                         with_blockage=True)
    config = TPSConfig(seed=1, guard=GuardConfig() if guard else None)
    with stopwatch() as sw:
        report = TPSScenario(design, config).run()
    return report, sw.seconds


def test_guard_overhead(benchmark, library):
    (plain, t_plain), (guarded, t_guarded) = benchmark.pedantic(
        lambda: (run_once(library, False), run_once(library, True)),
        rounds=1, iterations=1)

    overhead = (t_guarded - t_plain) / t_plain
    lines = [
        "Guard overhead (processor preset, %d cells)" % guarded.icells,
        "unguarded: %.2f s" % t_plain,
        "guarded:   %.2f s (%+.1f%%, %.2f s inside the guard)"
        % (t_guarded, 100.0 * overhead, guarded.guard_seconds),
        "failures: %d, rollbacks: %d, quarantined: %s"
        % (guarded.total_failures, guarded.total_rollbacks,
           guarded.quarantined or "none"),
    ]
    publish("guard_overhead.txt", "\n".join(lines) + "\n")

    # identical outcome: the guard observes, it must not steer
    assert guarded.worst_slack == plain.worst_slack
    assert guarded.wirelength == plain.wirelength
    assert guarded.total_failures == 0
    assert overhead < 0.15, "guard overhead %.1f%% over budget" % (
        100.0 * overhead)


def persisted_run(library, mode, rundir):
    """One durable TPS run on the largest preset, returning the
    report, the persistence cost counters, and the wall time."""
    design = build_des_design("Des3", library, scale=BENCH_SCALE)
    config = TPSConfig(seed=1)
    pconfig = PersistConfig(snapshot_every=10, snapshot_mode=mode)
    rd = RunDir.create(str(rundir), {"flow": "TPS",
                                     "config": config.to_state(),
                                     "persist": pconfig.to_state()})
    journal = Journal.create(rd.journal_path)
    persist = FlowPersist(rd, journal, pconfig, design)
    with stopwatch() as sw:
        report = TPSScenario(design, config, persist=persist).run()
    return report, dict(persist.stats), sw.seconds


def test_persist_snapshot_bytes(benchmark, library, tmp_path):
    """Full vs delta snapshot mode on an identical durable TPS run."""
    results = benchmark.pedantic(
        lambda: {mode: persisted_run(library, mode, tmp_path / mode)
                 for mode in ("full", "delta")},
        rounds=1, iterations=1)

    entry = {"preset": "Des3", "scale": BENCH_SCALE, "modes": {}}
    for mode, (report, stats, seconds) in results.items():
        written = stats["full_snapshots"] + stats["delta_snapshots"]
        milestones = written + stats["deduped"]
        bytes_total = stats["full_bytes"] + stats["delta_bytes"]
        entry["modes"][mode] = {
            "icells": report.icells,
            "run_seconds": round(seconds, 3),
            "milestones": milestones,
            "snapshots_written": written,
            "full_snapshots": stats["full_snapshots"],
            "delta_snapshots": stats["delta_snapshots"],
            "deduped": stats["deduped"],
            "snapshot_bytes": bytes_total,
            "bytes_per_milestone": round(bytes_total / milestones, 1),
            "snapshot_seconds": round(stats["snapshot_seconds"], 3),
            "seconds_per_milestone": round(
                stats["snapshot_seconds"] / milestones, 4),
        }
    full = entry["modes"]["full"]
    delta = entry["modes"]["delta"]
    entry["bytes_reduction"] = round(
        full["snapshot_bytes"] / delta["snapshot_bytes"], 2)
    publish("BENCH_persist.json",
            json.dumps(entry, indent=2, sort_keys=True) + "\n")

    # delta mode must not change what the flow computes at all
    assert report_state(results["delta"][0]) \
        == report_state(results["full"][0])
    # the tentpole acceptance bar: >= 3x fewer snapshot bytes per run
    assert entry["bytes_reduction"] >= 3.0, \
        "delta mode reduced snapshot bytes only %.2fx" \
        % entry["bytes_reduction"]
