"""Guarded-execution overhead: checkpoints must be near-free.

The guard wraps every transform invocation in a checkpoint + invariant
check (see ``repro.guard``).  For the robustness machinery to be
left on by default it has to stay well inside the noise floor of a
flow run; the budget here is 15% wall-clock on the processor workload
preset, with bit-identical results.
"""

from conftest import publish, stopwatch

from repro import GuardConfig, TPSScenario, make_design
from repro.scenario import TPSConfig
from repro.workloads import ProcessorParams, processor_partition

_PARAMS = ProcessorParams(n_stages=2, regs_per_stage=10,
                          gates_per_stage=150, seed=11)


def run_once(library, guard):
    netlist = processor_partition(_PARAMS, library)
    design = make_design(netlist, library, cycle_time=1600.0,
                         with_blockage=True)
    config = TPSConfig(seed=1, guard=GuardConfig() if guard else None)
    with stopwatch() as sw:
        report = TPSScenario(design, config).run()
    return report, sw.seconds


def test_guard_overhead(benchmark, library):
    (plain, t_plain), (guarded, t_guarded) = benchmark.pedantic(
        lambda: (run_once(library, False), run_once(library, True)),
        rounds=1, iterations=1)

    overhead = (t_guarded - t_plain) / t_plain
    lines = [
        "Guard overhead (processor preset, %d cells)" % guarded.icells,
        "unguarded: %.2f s" % t_plain,
        "guarded:   %.2f s (%+.1f%%, %.2f s inside the guard)"
        % (t_guarded, 100.0 * overhead, guarded.guard_seconds),
        "failures: %d, rollbacks: %d, quarantined: %s"
        % (guarded.total_failures, guarded.total_rollbacks,
           guarded.quarantined or "none"),
    ]
    publish("guard_overhead.txt", "\n".join(lines) + "\n")

    # identical outcome: the guard observes, it must not steer
    assert guarded.worst_slack == plain.worst_slack
    assert guarded.wirelength == plain.wirelength
    assert guarded.total_failures == 0
    assert overhead < 0.15, "guard overhead %.1f%% over budget" % (
        100.0 * overhead)
