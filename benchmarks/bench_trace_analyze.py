"""Trace-analytics cost: kernel profiling hooks and the analyzer.

The kernel profiler (:mod:`repro.obs.profile`) brackets every hot
kernel call with a ``perf_counter`` pair and folds the totals into the
counter registry, so every traced span carries ``profile.*`` deltas.
For the hooks to stay on by default in traced runs their cost has to
be invisible: the budget is 2% wall-clock on a traced Des3 TPS run,
measured hooks-on vs hooks-off (``profile.enable(False)``), with
bit-identical results — published as ``BENCH_trace.json``.

The same entry records what the analytics layer costs downstream:
``analyze_trace`` and ``diff_traces`` wall time on the produced trace,
which is what ``trace-report`` / ``trace-diff`` pay per invocation.
"""

import json
import os

from conftest import BENCH_SCALE, publish, stopwatch

from repro import TPSScenario, Tracer, TraceWriter
from repro.obs import analyze_trace, diff_traces, profile, read_trace
from repro.scenario import TPSConfig
from repro.scenario.report import report_state
from repro.workloads.presets import build_des_design


def traced_run(library, trace_path, profiling):
    design = build_des_design("Des3", library, scale=BENCH_SCALE)
    tracer = Tracer(design, writer=TraceWriter(trace_path))
    config = TPSConfig(seed=1)
    profile.reset()
    profile.enable(profiling)
    try:
        with stopwatch() as sw:
            report = TPSScenario(design, config, tracer=tracer).run()
    finally:
        profile.enable(True)
    return report, sw.seconds


def test_trace_analyze_cost(benchmark, library, tmp_path):
    off_path = str(tmp_path / "trace-off.jsonl")
    on_path = str(tmp_path / "trace-on.jsonl")
    results = benchmark.pedantic(
        lambda: {
            "off": traced_run(library, off_path, False),
            "on": traced_run(library, on_path, True),
        },
        rounds=1, iterations=1)

    plain, t_off = results["off"]
    hooked, t_on = results["on"]
    records = read_trace(on_path)
    with stopwatch() as sw_analyze:
        report = analyze_trace(records)
    with stopwatch() as sw_diff:
        diff = diff_traces(records, records)

    kernels = {}
    for row in report.rows:
        for kernel, seconds in row.kernels.items():
            kernels[kernel] = kernels.get(kernel, 0.0) + seconds
    overhead_pct = 100.0 * (t_on - t_off) / t_off
    entry = {
        "preset": "Des3",
        "scale": BENCH_SCALE,
        "icells": hooked.icells,
        "spans": len(records),
        "trace_bytes": os.path.getsize(on_path),
        "hooks_off_seconds": round(t_off, 3),
        "hooks_on_seconds": round(t_on, 3),
        "profiling_overhead_pct": round(overhead_pct, 2),
        "profiling_budget_pct": 2.0,
        "kernel_seconds": {k: round(s, 3)
                           for k, s in sorted(kernels.items())},
        "analyze_seconds": round(sw_analyze.seconds, 4),
        "diff_seconds": round(sw_diff.seconds, 4),
    }
    publish("BENCH_trace.json",
            json.dumps(entry, indent=2, sort_keys=True) + "\n")

    # the hooks observe, they must not steer
    assert report_state(hooked) == report_state(plain)
    # hooks actually fired: every span carries kernel attribution
    assert kernels, "no profile.* counters reached the trace"
    # a run diffed against itself must always triage clean
    assert diff.verdict == "ok"
    # the acceptance budget: hooks stay inside 2% of traced wall time
    assert overhead_pct <= 2.0, \
        "profiling hooks cost %.1f%% over a traced run" % overhead_pct
