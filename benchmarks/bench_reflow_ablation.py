"""Ablation (section 4.1): reflow after each partitioning cut.

Strict bipartitioning "traps" objects; reflow lets logic flow back
across earlier cut lines.  Expected: with reflow, total wirelength is
no worse (usually better) and the placement is less "grainy" — here
measured as lower variance of bin utilization.
"""

import statistics

from conftest import BENCH_SCALE, publish

from repro import TPSConfig, TPSScenario, build_des_design


def run_pair(library):
    out = {}
    for label, use in (("no_reflow", False), ("reflow", True)):
        design = build_des_design("Des1", library, scale=BENCH_SCALE)
        config = TPSConfig(use_reflow=use, seed=3)
        report = TPSScenario(design, config).run()
        utils = [b.utilization for b in design.grid.bins()
                 if b.effective_capacity > 0]
        out[label] = (report, statistics.pstdev(utils))
    return out


def test_reflow(benchmark, library):
    out = benchmark.pedantic(run_pair, args=(library,),
                             rounds=1, iterations=1)
    lines = ["Reflow ablation (Des1 at scale %g)" % BENCH_SCALE,
             "%-10s %9s %9s %12s" % ("variant", "WL", "slack",
                                     "util stdev")]
    for label, (report, spread) in out.items():
        lines.append("%-10s %9.0f %9.1f %12.3f"
                     % (label, report.wirelength, report.worst_slack,
                        spread))
    publish("reflow_ablation.txt", "\n".join(lines) + "\n")

    with_reflow, _s1 = out["reflow"]
    without, _s0 = out["no_reflow"]
    assert with_reflow.wirelength <= without.wirelength * 1.1
