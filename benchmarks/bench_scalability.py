"""Scalability (section 7): "full chips of about a million gates flat
... with reasonable run times".

The enabling property is that the placement transforms scale near
linearly: each cut partitions every region once, and region sizes
halve as their count doubles.  We run the placement phase
(Partitioner + Reflow + legalization) over a geometric size sweep and
check that runtime grows sub-quadratically.
"""

import math
import resource

from conftest import publish, stopwatch

from repro import default_library, make_design
from repro.placement import Partitioner, Reflow, legalize_rows
from repro.workloads import ProcessorParams, processor_partition

_SIZES = [250, 500, 1000, 2000]


def run_sweep(library):
    points = []
    for target in _SIZES:
        params = ProcessorParams(
            n_stages=3, regs_per_stage=max(4, target // 40),
            gates_per_stage=max(20, round(target * 0.30)), seed=31)
        netlist = processor_partition(params, library)
        design = make_design(netlist, library, cycle_time=2000.0)
        n = len(netlist.movable_cells())
        with stopwatch() as sw:
            part = Partitioner(design, seed=1)
            reflow = Reflow(part)
            while not part.done:
                part.cut()
                reflow.run()
            legalize_rows(design)
        # ru_maxrss is the process high-water mark (KiB on Linux), so
        # the column is a running maximum across the sweep
        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
        points.append((n, sw.seconds, design.total_wirelength(), rss))
    return points


def test_scalability(benchmark, library):
    points = benchmark.pedantic(run_sweep, args=(library,),
                                rounds=1, iterations=1)
    lines = ["Placement scalability sweep",
             "%8s %9s %10s %12s %12s" % ("cells", "seconds",
                                         "s/cell(ms)", "wirelength",
                                         "peakRSS(MB)")]
    for n, secs, wl, rss in points:
        lines.append("%8d %9.2f %10.2f %12.0f %12.1f"
                     % (n, secs, 1000.0 * secs / n, wl, rss))
    # empirical scaling exponent from the first and last points
    n0, t0 = points[0][:2]
    n1, t1 = points[-1][:2]
    exponent = math.log(t1 / t0) / math.log(n1 / n0)
    lines.append("empirical runtime exponent: %.2f "
                 "(1.0 = linear, 2.0 = quadratic)" % exponent)
    publish("scalability.txt", "\n".join(lines) + "\n")

    assert exponent < 1.9, "placement no longer scales: %.2f" % exponent
