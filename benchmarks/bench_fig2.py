"""Figure 2: wire load histogram — Steiner estimate vs final routing.

The paper plots, per net, the percentage error between the Steiner
tree length and the final routed length, and shows the large-error
tail disappearing when the shortest 10% / 20% of nets are removed
(quantization error on short nets has no delay significance).

We place and route one design, compute the same three series, and
check the same shape: the tail above 50% error shrinks monotonically
as short nets are dropped.
"""

import numpy as np
from conftest import BENCH_SCALE, publish

from repro import build_des_design
from repro.placement import Partitioner, Reflow, legalize_rows
from repro.routing import GlobalRouter

_BUCKETS = [0, 5, 10, 15, 20, 25, 30, 40, 50, 75, 100, 1000]


def run_fig2(library):
    design = build_des_design("Des2", library, scale=BENCH_SCALE)
    part = Partitioner(design, seed=3)
    part.run_to(100)
    Reflow(part).run()
    legalize_rows(design)
    result = GlobalRouter(design).route()
    data = [(r.steiner_length,
             100.0 * abs(r.routed_length - r.steiner_length)
             / r.steiner_length)
            for r in result.routes.values() if r.steiner_length > 0]
    data.sort()  # by steiner length, shortest first
    return data


def series(data, drop_fraction):
    kept = data[int(len(data) * drop_fraction):]
    return np.array([err for _l, err in kept])


def histogram_text(errors):
    counts, _edges = np.histogram(errors, bins=_BUCKETS)
    return counts


def format_figure(data):
    lines = ["Figure 2 (reproduction): wire load histogram",
             "% error buckets: " + ", ".join(
                 "%d-%d" % (a, b) for a, b in
                 zip(_BUCKETS[:-2], _BUCKETS[1:-1])) + ", >100",
             ""]
    for drop in (0.0, 0.1, 0.2):
        errors = series(data, drop)
        counts = histogram_text(errors)
        bars = " ".join("%4d" % c for c in counts)
        lines.append("drop %3d%% shortest: %s   (tail>50%%: %d nets)"
                     % (int(drop * 100), bars,
                        int((errors > 50).sum())))
    return "\n".join(lines) + "\n"


def test_fig2(benchmark, library):
    data = benchmark.pedantic(run_fig2, args=(library,),
                              rounds=1, iterations=1)
    publish("fig2.txt", format_figure(data))

    all_nets = series(data, 0.0)
    drop10 = series(data, 0.1)
    drop20 = series(data, 0.2)
    assert len(all_nets) > 100

    # the error tail is driven by short nets: removing the shortest
    # 10%/20% must shrink the >50% bucket monotonically
    tail = [(e > 50).mean() for e in (all_nets, drop10, drop20)]
    assert tail[0] >= tail[1] >= tail[2]
    assert tail[2] < tail[0] or tail[0] == 0.0

    # for slightly longer nets the Steiner estimate is sufficient:
    # median error of the surviving 80% is small
    assert np.median(drop20) <= 25.0
