"""Ablation (section 4.5): staged clock/scan masking vs the naive flow.

The staged protocol masks clock/scan nets and reserves register space
before buffers exist; the naive alternative (what SPR does) inserts
the clock tree after placement with no reservation.  Expected: staging
yields shorter clock wiring and less placement-image overflow right
after clock insertion.
"""

from conftest import BENCH_SCALE, publish

from repro import build_des_design, default_library
from repro.placement import Partitioner, Reflow
from repro.transforms import ClockScanOptimizer
from repro.transforms.sizing import GateSizing


def clock_wl(design):
    return sum(design.steiner.length(n)
               for n in design.netlist.nets() if n.is_clock)


def run_variant(library, staged: bool):
    design = build_des_design("Des4", library, scale=BENCH_SCALE)
    GateSizing().assign_gains(design)
    part = Partitioner(design, seed=5)
    reflow = Reflow(part)
    optimizer = ClockScanOptimizer(regs_per_buffer=6)
    if staged:
        while not part.done:
            part.cut()
            reflow.run()
            optimizer.apply_for_status(design, part.status)
    else:
        # Naive: clock and scan nets keep their weights during the
        # whole placement (registers get dragged by the clock star and
        # the arbitrary scan order), and the clock tree is bolted on at
        # the end with no space reservation.
        while not part.done:
            part.cut()
            reflow.run()
        optimizer.clock_optimization(design)
        optimizer.scan_optimization(design)
    data_wl = sum(design.steiner.length(n)
                  for n in design.netlist.nets()
                  if not n.is_clock and not n.is_scan)
    return {
        "clock_wl": clock_wl(design),
        "data_wl": data_wl,
        "overflow": design.grid.total_overflow(),
        "scan_wl": sum(design.steiner.length(n)
                       for n in design.netlist.nets() if n.is_scan),
    }


def run_pair(library):
    return {
        "staged": run_variant(library, True),
        "naive": run_variant(library, False),
    }


def test_clock_scan_staging(benchmark, library):
    out = benchmark.pedantic(run_pair, args=(library,),
                             rounds=1, iterations=1)
    lines = ["Clock/scan staging ablation (Des4 at scale %g)"
             % BENCH_SCALE,
             "%-8s %10s %10s %10s %10s" % ("variant", "data WL",
                                           "clock WL", "scan WL",
                                           "overflow")]
    for label, m in out.items():
        lines.append("%-8s %10.0f %10.0f %10.0f %10.1f"
                     % (label, m["data_wl"], m["clock_wl"],
                        m["scan_wl"], m["overflow"]))
    publish("clockscan_ablation.txt", "\n".join(lines) + "\n")

    # data flow dominates register placement under staging: data
    # wirelength must not be worse than the naive flow's
    assert out["staged"]["data_wl"] <= out["naive"]["data_wl"] * 1.05
