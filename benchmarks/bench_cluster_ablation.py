"""Ablation (§4.1): clustering for the early cuts, and per-region
quadratic refinement — the remaining two placement algorithms of the
paper's list, measured against the plain partitioning flow.
"""

from conftest import BENCH_SCALE, publish

from repro import build_des_design
from repro.placement import Partitioner, QuadraticRefine, Reflow


def run_variants(library):
    out = {}
    for label, cluster, quad in (("plain", 0, False),
                                 ("clustered", 3, False),
                                 ("quad_refined", 0, True)):
        design = build_des_design("Des1", library, scale=BENCH_SCALE)
        part = Partitioner(design, seed=11,
                           cluster_first_cuts=cluster)
        reflow = Reflow(part)
        while not part.done:
            part.cut()
            reflow.run()
            if quad and 40 <= part.status <= 80:
                QuadraticRefine().run(design)
        out[label] = design.total_wirelength()
    return out


def test_cluster_and_quadratic(benchmark, library):
    out = benchmark.pedantic(run_variants, args=(library,),
                             rounds=1, iterations=1)
    lines = ["Clustering / quadratic-refine ablation (Des1 at scale %g)"
             % BENCH_SCALE,
             "%-14s %12s" % ("variant", "wirelength")]
    for label, wl in out.items():
        lines.append("%-14s %12.0f" % (label, wl))
    publish("cluster_ablation.txt", "\n".join(lines) + "\n")

    # alternative placement algorithms must stay in the same quality
    # class as the plain flow (they are options, not regressions)
    assert out["clustered"] <= out["plain"] * 1.25
    assert out["quad_refined"] <= out["plain"] * 1.10
