"""Ablation (ref [4]): Krishnamurthy look-ahead gains in FM.

The partitioner breaks first-order gain ties with a second-order
("look-ahead") gain.  On tie-heavy hypergraphs this steers FM toward
moves that set up future uncuts.  We compare cut quality with and
without look-ahead over a batch of random hypergraphs and on a real
placement.
"""

import random

from conftest import BENCH_SCALE, publish

from repro import build_des_design
from repro.partition import Hypergraph, fm_bipartition
from repro.placement import Partitioner


def random_hypergraph(seed, n=80, m=140):
    rng = random.Random(seed)
    nets = []
    for _ in range(m):
        k = rng.randint(2, 4)
        nets.append(list({rng.randrange(n) for _ in range(k)}))
    nets = [net for net in nets if len(net) >= 2]
    return Hypergraph([1.0] * n, nets)


def run_experiment(library):
    cuts = {"lookahead": [], "plain": []}
    for seed in range(30):
        hg = random_hypergraph(seed)
        for label, flag in (("lookahead", True), ("plain", False)):
            res = fm_bipartition(hg, seed=seed, lookahead=flag)
            cuts[label].append(res.cut)

    wl = {}
    for label, flag in (("lookahead", True), ("plain", False)):
        design = build_des_design("Des5", library, scale=BENCH_SCALE)
        part = Partitioner(design, seed=3, lookahead=flag)
        part.run_to(100)
        wl[label] = design.total_wirelength()
    return cuts, wl


def test_lookahead(benchmark, library):
    cuts, wl = benchmark.pedantic(run_experiment, args=(library,),
                                  rounds=1, iterations=1)
    avg = {k: sum(v) / len(v) for k, v in cuts.items()}
    lines = ["Look-ahead gain ablation",
             "random hypergraphs (30 seeds): avg cut "
             "lookahead %.2f vs plain %.2f"
             % (avg["lookahead"], avg["plain"]),
             "Des5 placement wirelength: lookahead %.0f vs plain %.0f"
             % (wl["lookahead"], wl["plain"])]
    publish("lookahead_ablation.txt", "\n".join(lines) + "\n")

    # look-ahead should not lose on average
    assert avg["lookahead"] <= avg["plain"] * 1.05
