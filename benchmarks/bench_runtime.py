"""Section 6 runtime claim: TPS converges in a single invocation.

"The CPU times for SPR included repeated steps of synthesis and
placement ... The CPU time for TPS on the other hand was equal to
about one run of synthesis followed by placement."

What the claim really measures is *flow structure*: SPR needs several
placement/synthesis round trips (plus, in the paper, manual
intervention), while TPS is one converging pass.  We report both the
iteration counts and the wall-clock CPU of our implementations.
"""

from conftest import BENCH_SCALE, publish

from repro import SPRFlow, TPSScenario, build_des_design


def run_flows(library):
    d_spr = build_des_design("Des2", library, scale=BENCH_SCALE)
    spr = SPRFlow(d_spr).run()
    d_tps = build_des_design("Des2", library, scale=BENCH_SCALE)
    tps = TPSScenario(d_tps).run()
    return spr, tps


def test_runtime_structure(benchmark, library):
    spr, tps = benchmark.pedantic(run_flows, args=(library,),
                                  rounds=1, iterations=1)
    spr_passes = [l for l in spr.trace_lines() if "quadratic placement" in l]
    lines = [
        "Runtime / convergence structure (Des2 at scale %g)" % BENCH_SCALE,
        "SPR: %d synthesis+placement iterations, %.1f s CPU"
        % (spr.iterations, spr.cpu_seconds),
        "TPS: single invocation (1 converging flow), %.1f s CPU"
        % tps.cpu_seconds,
        "",
        "SPR placement passes: %d" % len(spr_passes),
        "TPS re-entries: 0 (placement and synthesis interleave once)",
    ]
    publish("runtime.txt", "\n".join(lines) + "\n")

    # the structural claim: TPS is one pass, SPR iterates
    assert tps.iterations == 1
    assert spr.iterations >= 1
    assert len(spr_passes) == spr.iterations
