"""Ablation (section 4.4): virtual vs actual discretization cost.

"Virtual discretization does not cause the incremental timing analysis
to recompute ... performing actual discretization would result in
re-implementation of the timing graph and therefore can be expensive."

We take the same mid-flow design twice and run one discretization pass
(a) with gain-based timing in force (virtual: the placer sees new
shapes, gain delays are size-independent so nothing re-propagates) and
(b) with load-based timing (actual: every resize changes loads and
re-propagates).  The metric is timing work — arrival recomputations
triggered by the pass — plus the wall time of the pass.
"""

from conftest import BENCH_SCALE, publish, stopwatch

from repro import DelayMode, build_des_design
from repro.placement import Partitioner, Reflow
from repro.transforms.sizing import GateSizing


def prepared_design(library, mode):
    design = build_des_design("Des2", library, scale=BENCH_SCALE)
    sizing = GateSizing()
    sizing.assign_gains(design)
    part = Partitioner(design, seed=7)
    part.run_to(25)
    Reflow(part).run()
    if mode is DelayMode.LOAD:
        design.timing.set_mode(DelayMode.LOAD)
    design.timing.worst_slack()  # settle: flush all dirty state
    return design, sizing


def measure(library, mode):
    design, sizing = prepared_design(library, mode)
    before = dict(design.timing.stats())
    with stopwatch() as sw:
        result = sizing.discretize(design)
        design.timing.worst_slack()  # force the engine to absorb the pass
    elapsed = sw.seconds
    recomputes = (design.timing.stats()["arrival_recomputes"]
                  - before["arrival_recomputes"])
    changes = (design.timing.stats()["arrival_changes"]
               - before["arrival_changes"])
    return {"resized": result.accepted, "recomputes": recomputes,
            "changes": changes, "seconds": elapsed}


def run_pair(library):
    return {
        "virtual (gain)": measure(library, DelayMode.GAIN),
        "actual (load)": measure(library, DelayMode.LOAD),
    }


def test_virtual_discretization(benchmark, library):
    out = benchmark.pedantic(run_pair, args=(library,),
                             rounds=1, iterations=1)
    lines = ["Discretization cost ablation (Des2 at scale %g, one pass "
             "at status 25)" % BENCH_SCALE,
             "%-16s %9s %14s %15s %9s" % ("variant", "resized",
                                          "arrival_recomp",
                                          "arrival_changes", "seconds")]
    for label, m in out.items():
        lines.append("%-16s %9d %14d %15d %9.2f"
                     % (label, m["resized"], m["recomputes"],
                        m["changes"], m["seconds"]))
    publish("sizing_ablation.txt", "\n".join(lines) + "\n")

    virtual = out["virtual (gain)"]
    actual = out["actual (load)"]
    assert virtual["resized"] > 0
    # virtual discretization re-propagates a fraction of the values:
    # gain delays are size-independent, so only long-wire Elmore terms
    # can change; under actual (load) timing everything changes
    assert virtual["changes"] < actual["changes"] * 0.5
