"""Ablation (section 4.3): logical-effort net weighting modes.

Runs the TPS scenario with net weighting disabled, in ABSOLUTE mode,
and in INCREMENTAL mode.  The paper's claim: logical-effort-scaled,
per-cut-refreshed weights control timing more precisely than no
weighting; the incremental mode changes weights more smoothly.
"""

from conftest import BENCH_SCALE, publish

from repro import TPSConfig, TPSScenario, build_des_design
from repro.transforms import WeightMode


def run_modes(library):
    results = {}
    for label, mode in (("none", None),
                        ("absolute", WeightMode.ABSOLUTE),
                        ("incremental", WeightMode.INCREMENTAL)):
        design = build_des_design("Des5", library, scale=BENCH_SCALE)
        config = TPSConfig(netweight_mode=mode, seed=2)
        results[label] = TPSScenario(design, config).run()
    return results


def test_netweight_modes(benchmark, library):
    results = benchmark.pedantic(run_modes, args=(library,),
                                 rounds=1, iterations=1)
    lines = ["Net weighting ablation (Des5 at scale %g)" % BENCH_SCALE,
             "%-12s %9s %9s" % ("mode", "slack", "WL")]
    for label, report in results.items():
        lines.append("%-12s %9.1f %9.0f"
                     % (label, report.worst_slack, report.wirelength))
    publish("netweight_ablation.txt", "\n".join(lines) + "\n")

    best_weighted = max(results["absolute"].worst_slack,
                        results["incremental"].worst_slack)
    # weighting should not lose to no weighting by a meaningful margin
    cycle = results["none"].cycle_time
    assert best_weighted >= results["none"].worst_slack - 0.05 * cycle
