"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index), printing it and writing it under
``benchmarks/results/`` so EXPERIMENTS.md can reference the output.

Environment knobs:

* ``REPRO_TABLE1_SCALE`` — netlist scale for the Table 1 run
  (default 0.35, ~1/12 of the paper's partition sizes);
* ``REPRO_BENCH_SCALE`` — scale for the single-design benchmarks and
  ablations (default 0.2).
"""

import os
import time
from pathlib import Path

import pytest

from repro.library import default_library

RESULTS_DIR = Path(__file__).parent / "results"

TABLE1_SCALE = float(os.environ.get("REPRO_TABLE1_SCALE", "0.35"))
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))


@pytest.fixture(scope="session")
def library():
    return default_library()


class stopwatch:
    """Monotonic wall-clock timer for benchmark bodies.

    ``with stopwatch() as sw: ...`` then read ``sw.seconds``. Uses
    ``time.perf_counter`` so timings are immune to system clock steps.
    """

    def __enter__(self):
        self.seconds = 0.0
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.seconds = time.perf_counter() - self._t0
        return False


def publish(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text)
    print()
    print(text)
