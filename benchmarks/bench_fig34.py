"""Figures 3 and 4: strong moves on a critical meander and a Steiner net.

Figure 3: on the meander A -> C -> D -> E -> B (A, B fixed), moving
any single circuit has no beneficial effect; moving C, D, E together
improves timing.  Figure 4: moving Steiner node A or B alone does not
reduce the net length, moving both together does.
"""

from conftest import publish

from repro import DelayMode, Point, Rect, TimingConstraints, default_library
from repro.design import Design
from repro.netlist import Netlist
from repro.transforms import CircuitMigration
from repro.wirelength import build_steiner


def build_meander(library):
    netlist = Netlist("meander")
    cells = {n: netlist.add_cell(n, library.smallest("INV"))
             for n in ("C", "D", "E")}
    a = netlist.add_input_port("A")
    b = netlist.add_output_port("B")
    prev = a.pin("Z")
    for n in ("C", "D", "E"):
        net = netlist.add_net("n_" + n)
        netlist.connect(prev, net)
        netlist.connect(cells[n].pin("A"), net)
        prev = cells[n].pin("Z")
    last = netlist.add_net("n_B")
    netlist.connect(prev, last)
    netlist.connect(b.pin("A"), last)
    design = Design(netlist, library, Rect(0, 0, 48, 32),
                    TimingConstraints(cycle_time=20.0),
                    mode=DelayMode.LOAD)
    netlist.move_cell(a, Point(0, 0))
    netlist.move_cell(b, Point(40, 0))
    netlist.move_cell(cells["C"], Point(10, 20))
    netlist.move_cell(cells["D"], Point(20, 20))
    netlist.move_cell(cells["E"], Point(30, 20))
    return design, cells


def run_fig3(library):
    design, cells = build_meander(library)
    engine = design.timing
    base = engine.worst_slack()
    singles = {}
    for n in ("C", "D", "E"):
        cell = cells[n]
        old = cell.position
        design.netlist.move_cell(cell, Point(old.x, 0.0))
        singles[n] = engine.worst_slack() - base
        design.netlist.move_cell(cell, old)
    result = CircuitMigration(max_group_size=4).run(design)
    joint_gain = engine.worst_slack() - base
    return singles, result.accepted, joint_gain


def run_fig4():
    """Figure 4: three-terminal Steiner net; joint vertical motion of
    two nodes shortens the tree, individual motion does not."""
    c = Point(10, 0)
    a = Point(0, 10)
    b = Point(20, 10)
    base = build_steiner([c, a, b]).length

    move_a = build_steiner([c, a.translated(0, -10), b]).length
    move_b = build_steiner([c, a, b.translated(0, -10)]).length
    move_both = build_steiner([c, a.translated(0, -10),
                               b.translated(0, -10)]).length
    return base, move_a, move_b, move_both


def test_fig3_strong_move(benchmark, library):
    singles, accepted, joint_gain = benchmark.pedantic(
        run_fig3, args=(library,), rounds=1, iterations=1)
    lines = ["Figure 3 (reproduction): meander strong move",
             "single-cell slack gains (ps): "
             + ", ".join("%s %+0.2f" % kv for kv in singles.items()),
             "joint move accepted: %d, slack gain %+0.2f ps"
             % (accepted, joint_gain)]
    publish("fig3.txt", "\n".join(lines) + "\n")
    # no individual move helps ...
    assert all(gain <= 1e-9 for gain in singles.values())
    # ... but the collective strong move does
    assert accepted >= 1
    assert joint_gain > 0


def test_fig4_joint_steiner_motion(benchmark):
    base, move_a, move_b, move_both = benchmark.pedantic(
        run_fig4, rounds=1, iterations=1)
    lines = ["Figure 4 (reproduction): Steiner node motion",
             "base length %.0f; move A alone %.0f; move B alone %.0f;"
             % (base, move_a, move_b),
             "move A and B together %.0f" % move_both]
    publish("fig4.txt", "\n".join(lines) + "\n")
    assert move_a >= base - 1e-9
    assert move_b >= base - 1e-9
    assert move_both < base
