"""Structure-of-arrays core: kernel speedups over the object graph.

Times the three ported kernels in their flow-dominant regimes, per Des
preset and per core, publishing ``BENCH_soa.json``:

* **sta_sweep** — a placement-iteration retime: every movable cell
  moves, the shared electrical cache is pre-warmed (the wire model is
  identical Python in both cores and is *not* part of the ported
  kernel), then one full-frontier flush is timed — heap-and-dict
  propagation vs the levelized array sweep;
* **quad_assembly** — ``QuadraticPlacer._solve`` with the (scipy, so
  core-independent) CG solve stubbed out, isolating clique/star system
  assembly — per-net Python loops vs batched emission streams;
* **bin_rebuild** — full grid re-binning at two resolutions — the
  per-cell insert walk vs the vectorized occupancy scatter.

Also reported: array-core s/cell per preset, the empirical runtime
exponent of the array kernel suite across preset sizes, and the
process peak RSS.  The sweep's array advantage is bounded by logic
depth (one numpy dispatch per level, see docs/internals.md §10), so
speedups grow with preset width.

Knobs: ``REPRO_SOA_SCALE`` (default 2.0) scales the presets;
``REPRO_SOA_PRESETS`` (comma list, default all five) picks presets —
the CI perf smoke runs Des1 only.
"""

import json
import math
import os
import random
import resource

import numpy as np
from conftest import publish, stopwatch

from repro.geometry import Point
from repro.library import default_library
from repro.placement import QuadraticPlacer
import repro.placement.quadratic as quad_mod
from repro.wirelength.wlm import WireLoadModel
from repro.workloads.presets import DES_PRESETS, build_des_design

SOA_SCALE = float(os.environ.get("REPRO_SOA_SCALE", "2.0"))
SOA_PRESETS = [p for p in
               os.environ.get("REPRO_SOA_PRESETS",
                              ",".join(sorted(DES_PRESETS))).split(",")
               if p]

ROUNDS = 3


def _build(preset, core, library):
    design = build_des_design(preset, library, scale=SOA_SCALE,
                              core=core)
    # the lumped wire-load model keeps the (shared, core-independent)
    # electrical Python out of the kernel timings
    design.timing.set_wire_model(
        WireLoadModel(design.steiner, design.parasitics))
    QuadraticPlacer(design).run()
    design.timing.worst_slack()  # settle; warms the array image
    return design


def _time_sweep(design):
    """Mass-move retime: the frontier is the whole design."""
    rng = random.Random(7)
    cells = design.netlist.movable_cells()
    nets = design.netlist.nets()
    die = design.die
    total = 0.0
    for _ in range(ROUNDS):
        for cell in cells:
            design.netlist.move_cell(cell, Point(
                die.xlo + rng.random() * die.width,
                die.ylo + rng.random() * die.height))
        for net in nets:  # pre-warm the shared electrical cache
            design.timing.net_electrical(net)
        with stopwatch() as sw:
            design.timing.worst_slack()
            design.timing.total_negative_slack()
        total += sw.seconds
    return total


def _time_assembly(design):
    """System assembly alone: CG is scipy in both cores, so stub it."""
    real_cg = quad_mod.cg

    def stub(mat, rhs, rtol=None, maxiter=None):
        return np.zeros(mat.shape[0]), 0

    quad_mod.cg = stub
    try:
        placer = QuadraticPlacer(design)
        movable = design.netlist.movable_cells()
        with stopwatch() as sw:
            for _ in range(ROUNDS):
                placer._solve(movable)
        return sw.seconds
    finally:
        quad_mod.cg = real_cg


def _time_bins(design):
    with stopwatch() as sw:
        for _ in range(ROUNDS):
            design.grid.resize(24, 24)
            design.grid.resize(12, 12)
    return sw.seconds


def _kernels(preset, core, library):
    design = _build(preset, core, library)
    return design.icell_count(), {
        "sta_sweep": _time_sweep(design),
        "quad_assembly": _time_assembly(design),
        "bin_rebuild": _time_bins(design),
    }


def test_soa_speedup():
    library = default_library()
    presets = {}
    sizes = []
    for preset in SOA_PRESETS:
        n, obj = _kernels(preset, "object", library)
        _, arr = _kernels(preset, "array", library)
        t_obj = sum(obj.values())
        t_arr = sum(arr.values())
        entry = {
            "cells": n,
            "object_seconds": {k: round(v, 4) for k, v in obj.items()},
            "array_seconds": {k: round(v, 4) for k, v in arr.items()},
            "speedup": {k: round(obj[k] / arr[k], 2) for k in obj},
            "total_speedup": round(t_obj / t_arr, 2),
            "array_s_per_cell": round(t_arr / n, 6),
        }
        presets[preset] = entry
        sizes.append((n, t_arr))

    # empirical runtime exponent of the array kernel suite, from the
    # smallest to the largest preset actually run
    sizes.sort()
    (n0, t0), (n1, t1) = sizes[0], sizes[-1]
    exponent = (math.log(t1 / t0) / math.log(n1 / n0)
                if n1 > n0 else 1.0)
    rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0

    speedups = [presets[p]["total_speedup"] for p in presets]
    report = {
        "scale": SOA_SCALE,
        "rounds": ROUNDS,
        "presets": presets,
        "aggregate_speedup": round(
            sum(speedups) / len(speedups), 2),
        "best_kernel_speedup": round(
            max(e["speedup"][k] for e in presets.values()
                for k in e["speedup"]), 2),
        "runtime_exponent": round(exponent, 3),
        "peak_rss_mb": round(rss_mb, 1),
    }
    publish("BENCH_soa.json",
            json.dumps(report, indent=2, sort_keys=True) + "\n")

    # the perf bars: the array core must beat the object core on every
    # preset, and the array kernels must stay near-linear in cells
    for preset, entry in presets.items():
        assert entry["total_speedup"] > 1.0, \
            "array core slower than object on %s: %s" % (preset, entry)
    if n1 > n0:
        assert exponent <= 1.1, \
            "array kernels no longer near-linear: %.3f" % exponent
