"""Tracing overhead: spans must be near-free, and off must be free.

``repro.obs`` wraps every transform/substrate invocation of a flow in
a span that samples the design metrics (four analyzer queries) and the
counter registry.  The flow itself makes those same queries constantly,
so the incremental analyzers answer them from cache; the budget here
is 2% wall-clock with tracing *off* (the ``if tracer is None`` guard
is all that remains) and a recorded — not budgeted — figure with
tracing on, published as ``BENCH_obs.json``.

Tracing must also be observe-only: the traced and untraced runs must
produce identical report metrics.
"""

import json
import os

from conftest import publish, stopwatch

from repro import TPSScenario, Tracer, TraceWriter, make_design
from repro.obs import read_trace
from repro.scenario import TPSConfig
from repro.scenario.report import report_state
from repro.workloads import ProcessorParams, processor_partition

_PARAMS = ProcessorParams(n_stages=2, regs_per_stage=10,
                          gates_per_stage=150, seed=11)


def run_once(library, tracer_for=None, trace_path=None):
    netlist = processor_partition(_PARAMS, library)
    design = make_design(netlist, library, cycle_time=1600.0,
                         with_blockage=True)
    tracer = None
    if tracer_for == "memory":
        tracer = Tracer(design)
    elif tracer_for == "file":
        tracer = Tracer(design, writer=TraceWriter(trace_path))
    config = TPSConfig(seed=1)
    with stopwatch() as sw:
        report = TPSScenario(design, config, tracer=tracer).run()
    return report, sw.seconds


def test_obs_overhead(benchmark, library, tmp_path):
    trace_path = str(tmp_path / "trace.jsonl")
    results = benchmark.pedantic(
        lambda: {
            "off": run_once(library),
            "memory": run_once(library, "memory"),
            "file": run_once(library, "file", trace_path),
        },
        rounds=1, iterations=1)

    plain, t_plain = results["off"]
    memory, t_memory = results["memory"]
    filed, t_file = results["file"]
    records = read_trace(trace_path)

    entry = {
        "preset": "processor",
        "icells": plain.icells,
        "untraced_seconds": round(t_plain, 3),
        "memory_traced_seconds": round(t_memory, 3),
        "file_traced_seconds": round(t_file, 3),
        "memory_overhead_pct": round(
            100.0 * (t_memory - t_plain) / t_plain, 2),
        "file_overhead_pct": round(
            100.0 * (t_file - t_plain) / t_plain, 2),
        "spans": len(records),
        "trace_bytes": os.path.getsize(trace_path),
    }
    publish("BENCH_obs.json",
            json.dumps(entry, indent=2, sort_keys=True) + "\n")

    # observe-only: tracing must not steer the flow
    assert report_state(memory) == report_state(plain)
    assert report_state(filed) == report_state(plain)
    assert len(memory.spans) == len(records)
