"""Section 2 claim: gradual bin refinement -> gradually better estimates.

"Gradual refinement of the bins will create gradually more precise
wire-length estimates and better timing and noise analysis."

We freeze copies of one design at increasing cut status, compare the
Steiner wirelength estimate at that status against the same netlist's
final routed wirelength, and expect the estimation error to shrink as
the image refines.
"""

from conftest import BENCH_SCALE, publish

from repro import build_des_design
from repro.placement import Partitioner, Reflow, legalize_rows
from repro.routing import GlobalRouter

_CHECKPOINTS = [20, 40, 60, 80, 100]


def run_refinement(library):
    design = build_des_design("Des5", library, scale=BENCH_SCALE)
    part = Partitioner(design, seed=6)
    reflow = Reflow(part)
    estimates = {}
    while not part.done:
        part.cut()
        reflow.run()
        for mark in _CHECKPOINTS:
            if mark not in estimates and part.status >= mark:
                estimates[mark] = design.total_wirelength()
    legalize_rows(design)
    result = GlobalRouter(design).route()
    final = sum(r.routed_length for r in result.routes.values())
    return estimates, final


def test_image_refinement(benchmark, library):
    estimates, final = benchmark.pedantic(run_refinement,
                                          args=(library,),
                                          rounds=1, iterations=1)
    lines = ["Bin refinement ablation (Des5 at scale %g)" % BENCH_SCALE,
             "final routed wirelength: %.0f tracks" % final,
             "%-8s %12s %10s" % ("status", "estimate", "error %")]
    errors = {}
    for mark in _CHECKPOINTS:
        est = estimates[mark]
        errors[mark] = abs(est - final) / final * 100.0
        lines.append("%-8d %12.0f %9.1f%%" % (mark, est, errors[mark]))
    publish("image_refinement.txt", "\n".join(lines) + "\n")

    # estimates approach the routed truth as bins refine
    assert errors[100] < errors[20]
    assert errors[100] < 35.0
