"""Table 1: SPR vs TPS on the five processor partitions.

Regenerates the paper's headline table — area (icells), worst slack,
% cycle time improvement, horizontal/vertical wires cut (pk/avg) —
for Des1..Des5 at the benchmark scale.

Expected shape (paper): TPS improves slack on every design (6.5-11.5%
of cycle there), icells slightly lower for TPS, wirability comparable.
Absolute numbers differ: our substrate is a scaled synthetic workload
on a Python flow, not 20k-40k-cell IBM partitions.
"""

from conftest import TABLE1_SCALE, publish

from repro import FlowReport, SPRFlow, TPSScenario, build_des_design

DESIGNS = ["Des1", "Des2", "Des3", "Des4", "Des5"]


def run_table1(library):
    rows = []
    for name in DESIGNS:
        d_spr = build_des_design(name, library, scale=TABLE1_SCALE)
        spr = SPRFlow(d_spr).run()
        d_tps = build_des_design(name, library, scale=TABLE1_SCALE)
        tps = TPSScenario(d_tps).run()
        rows.append((name, spr, tps))
    return rows


def format_table(rows):
    lines = [
        "Table 1 (reproduction at scale %g): Results for TPS"
        % TABLE1_SCALE,
        "%-5s %-5s %7s %9s %8s %14s %14s %6s" % (
            "Ckt", "Flow", "icells", "slack", "% impr",
            "Horiz pk/avg", "Vert pk/avg", "cpu_s"),
    ]
    for name, spr, tps in rows:
        impr = FlowReport.cycle_time_improvement(spr, tps)
        for r, show_impr in ((spr, ""), (tps, "%.1f" % impr)):
            c = r.cuts
            lines.append("%-5s %-5s %7d %9.1f %8s %9d/%-4d %9d/%-4d %6.1f"
                         % (name, r.flow, r.icells, r.worst_slack,
                            show_impr,
                            round(c.horizontal_peak),
                            round(c.horizontal_avg),
                            round(c.vertical_peak),
                            round(c.vertical_avg),
                            r.cpu_seconds))
    return "\n".join(lines) + "\n"


def test_table1(benchmark, library):
    rows = benchmark.pedantic(run_table1, args=(library,),
                              rounds=1, iterations=1)
    publish("table1.txt", format_table(rows))

    wins = sum(1 for _n, spr, tps in rows
               if tps.worst_slack >= spr.worst_slack)
    improvements = [FlowReport.cycle_time_improvement(spr, tps)
                    for _n, spr, tps in rows]
    # Paper shape: TPS improves timing across the board.  At our scale
    # we require a majority of clear wins and a positive mean.
    assert wins >= 3, "TPS won only %d/5 designs" % wins
    assert sum(improvements) / len(improvements) > 0.0

    # icells: TPS same or slightly better (Table 1's area column)
    fewer = sum(1 for _n, spr, tps in rows if tps.icells <= spr.icells)
    assert fewer >= 3

    # wirability maintained: average cut within 1.5x of SPR
    for _n, spr, tps in rows:
        assert tps.cuts.horizontal_avg <= 1.5 * spr.cuts.horizontal_avg + 20
        assert tps.cuts.vertical_avg <= 1.5 * spr.cuts.vertical_avg + 20
