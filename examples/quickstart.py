"""Quickstart: run the TPS flow on a synthetic processor partition.

Builds a small Des5-style design, runs the full Figure-5 scenario
(partitioning + reflow + clock/scan staging + sizing + electrical
correction + detailed placement + routing), and prints the closing
metrics.

Run:  python examples/quickstart.py
"""

from repro import TPSScenario, build_des_design, default_library


def main() -> None:
    library = default_library()
    design = build_des_design("Des5", library, scale=0.2)
    print("design: %d cells, %d nets, die %gx%g tracks"
          % (design.netlist.num_cells, design.netlist.num_nets,
             design.die.width, design.die.height))
    print("cycle time target: %g ps" % design.constraints.cycle_time)
    print("running the TPS scenario ...")

    report = TPSScenario(design).run()

    print()
    print("flow finished in %.1f s" % report.cpu_seconds)
    print("  worst slack : %8.1f ps" % report.worst_slack)
    print("  wirelength  : %8.0f tracks" % report.wirelength)
    print("  cell area   : %8.0f track^2 (%d icells)"
          % (report.cell_area, report.icells))
    print("  wires cut   : %s  (horiz pk/avg, vert pk/avg)"
          % report.cuts.row())
    print("  routable    : %s" % report.routable)
    print()
    print("last flow steps:")
    for line in report.trace_lines()[-8:]:
        print("   ", line)


if __name__ == "__main__":
    main()
