"""Writing a custom transform against the TPS analyzers.

"The flexibility of the transformational approach allows us to easily
add, extend and support more sophisticated algorithms ... and target a
variety of metrics including noise, yield and manufacturability."

This example adds a **noise-driven spacing transform**: it queries the
noise analyzer for the noisiest victim nets and tries to move their
weak drivers out of congestion hotspots — accepting a move only when
the noise analyzer confirms the improvement and the timing analyzer
confirms no degradation.  The same try/score/accept-or-reject contract
every built-in transform follows.

Run:  python examples/custom_transform.py
"""

from repro import default_library, make_design
from repro.analysis import NoiseAnalyzer
from repro.design import Design
from repro.placement import Partitioner, legalize_rows
from repro.routing import GlobalRouter
from repro.transforms.base import TimingProbe, Transform, TransformResult
from repro.workloads import ProcessorParams, processor_partition


class NoiseSpacing(Transform):
    """Move weak drivers of noisy nets toward quieter bins."""

    name = "noise_spacing"

    def __init__(self, max_nets: int = 20) -> None:
        self.max_nets = max_nets

    def run(self, design: Design) -> TransformResult:
        result = TransformResult(self.name)
        analyzer = NoiseAnalyzer(design)
        report = analyzer.analyze()
        noisy = sorted(report.per_net.items(), key=lambda kv: -kv[1])
        for net_name, _noise in noisy[:self.max_nets]:
            net = design.netlist.net(net_name)
            driver = net.driver()
            if driver is None or not driver.cell.is_movable:
                continue  # port-driven nets have no cell to move
            cell = driver.cell
            home = design.grid.bin_of(cell)
            if home is None:
                continue
            before_noise = analyzer.net_noise(net)
            probe = TimingProbe(design)
            old = cell.position
            accepted = False
            for quiet in sorted(design.grid.neighbors(home),
                                key=lambda b: b.congestion):
                if not quiet.can_fit(cell.area):
                    continue
                design.netlist.move_cell(cell, quiet.center)
                if (analyzer.net_noise(net) < before_noise - 1e-9
                        and probe.not_degraded()):
                    accepted = True
                    break
                design.netlist.move_cell(cell, old)
            if accepted:
                result.accepted += 1
            else:
                result.rejected += 1
        return result


def main() -> None:
    library = default_library()
    params = ProcessorParams(n_stages=2, regs_per_stage=10,
                             gates_per_stage=160, seed=13)
    netlist = processor_partition(params, library)
    design = make_design(netlist, library, cycle_time=1500.0)

    Partitioner(design, seed=3).run_to(100)
    legalize_rows(design)
    GlobalRouter(design).route()  # publishes congestion to the bins

    analyzer = NoiseAnalyzer(design)
    before = analyzer.analyze()
    print("before: worst noise %.3f on %s"
          % (before.worst[1], before.worst[0]))

    result = NoiseSpacing().run(design)
    print("noise spacing: %d accepted / %d attempted"
          % (result.accepted, result.attempted))

    GlobalRouter(design).route()
    after = analyzer.analyze()
    print("after:  worst noise %.3f on %s"
          % (after.worst[1], after.worst[0]))
    print("worst slack unchanged or better: %.1f ps"
          % design.worst_slack())


if __name__ == "__main__":
    main()
