"""Every analyzer at once: timing, congestion, noise, power, yield.

The TPS thesis is that transforms get *direct feedback* from the
sign-off analyzers.  This example runs the flow and then queries the
whole analyzer suite on the finished design — the same objects a
custom transform would interrogate.

Run:  python examples/analyzer_suite.py
"""

from repro import TPSScenario, build_des_design, default_library
from repro.analysis import (
    NoiseAnalyzer,
    PowerAnalyzer,
    YieldAnalyzer,
    congestion_report,
    qor_summary,
    report_timing,
    slack_histogram,
)


def main() -> None:
    library = default_library()
    design = build_des_design("Des1", library, scale=0.15)
    print("running TPS on %d cells ..." % design.netlist.num_cells)
    report = TPSScenario(design).run()

    print()
    print("timing")
    print("  worst slack %.1f ps of a %g ps cycle"
          % (report.worst_slack, report.cycle_time))
    print("  TNS %.1f ps" % design.timing.total_negative_slack())

    congestion = congestion_report(design)
    print("congestion")
    print("  max %.2f, avg %.2f, %d hotspot bin(s)"
          % (congestion.max_congestion, congestion.avg_congestion,
             len(congestion.hotspots)))

    noise = NoiseAnalyzer(design, margin=0.35).analyze()
    worst_net, worst_val = noise.worst
    print("noise")
    print("  worst victim %s at %.3f of the rail; %d violation(s)"
          % (worst_net, worst_val, len(noise.violations())))

    power = PowerAnalyzer(design).analyze()
    print("power")
    print("  total %.1f uW, clock tree %.1f uW (%.0f%%)"
          % (power.total, power.clock, 100 * power.clock_fraction))

    yld = YieldAnalyzer(design).analyze()
    print("yield")
    print("  critical area %.0f track^2 (short %.0f + open %.0f)"
          % (yld.total_critical_area, yld.short_critical_area,
             yld.open_critical_area))
    print("  estimated functional yield %.1f%%"
          % (100 * yld.yield_estimate))

    print()
    print("QoR:", qor_summary(design).row())
    print()
    print(slack_histogram(design, buckets=8).format())
    print()
    print(report_timing(design, n_paths=1))


if __name__ == "__main__":
    main()
