"""Timing closure: TPS vs the traditional SPR loop (one Table 1 row).

Runs the same design through both flows and prints the comparison the
paper's Table 1 makes: area (icells), worst slack, % cycle-time
improvement, and horizontal/vertical wires cut.

Run:  python examples/timing_closure.py [DesN] [scale]
"""

import sys

from repro import (
    FlowReport,
    SPRFlow,
    TPSScenario,
    build_des_design,
    default_library,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "Des1"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.2
    library = default_library()

    print("=== %s at scale %g ===" % (name, scale))
    d_spr = build_des_design(name, library, scale=scale)
    print("SPR: synthesis -> quadratic placement -> resynthesis ...")
    spr = SPRFlow(d_spr).run()
    print("SPR finished: %d placement/synthesis iterations, %.1f s"
          % (spr.iterations, spr.cpu_seconds))

    d_tps = build_des_design(name, library, scale=scale)
    print("TPS: one converging transformational flow ...")
    tps = TPSScenario(d_tps).run()
    print("TPS finished: single invocation, %.1f s" % tps.cpu_seconds)

    print()
    header = "%-5s %-5s %7s %9s %14s %14s" % (
        "Ckt", "Flow", "icells", "slack", "Horiz pk/avg", "Vert pk/avg")
    print(header)
    print("-" * len(header))
    for r in (spr, tps):
        cuts = r.cuts
        print("%-5s %-5s %7d %9.1f %9d/%-4d %9d/%-4d" % (
            name, r.flow, r.icells, r.worst_slack,
            round(cuts.horizontal_peak), round(cuts.horizontal_avg),
            round(cuts.vertical_peak), round(cuts.vertical_avg)))
    print()
    impr = FlowReport.cycle_time_improvement(spr, tps)
    print("cycle time improvement: %.1f%% of the %g ps cycle"
          % (impr, d_tps.constraints.cycle_time))
    print("wirelength: SPR %.0f vs TPS %.0f tracks"
          % (spr.wirelength, tps.wirelength))


if __name__ == "__main__":
    main()
