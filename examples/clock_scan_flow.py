"""Clock tree and scan chain optimization, staged by placement status.

Shows section 4.5's protocol in action on a register-heavy design:

* at status 10, clock/scan weights drop to zero and registers grow to
  reserve space;
* at status 30, a recursive buffered clock tree is built into the
  freed space (little or no overlap is created);
* at status 80, the scan chain is reordered by register location.

Run:  python examples/clock_scan_flow.py
"""

from repro import default_library, make_design
from repro.placement import Partitioner, Reflow
from repro.transforms import ClockScanOptimizer
from repro.transforms.sizing import GateSizing
from repro.workloads import ProcessorParams, processor_partition


def scan_length(design):
    return sum(design.steiner.length(n)
               for n in design.netlist.nets() if n.is_scan)


def clock_length(design):
    return sum(design.steiner.length(n)
               for n in design.netlist.nets() if n.is_clock)


def main() -> None:
    library = default_library()
    params = ProcessorParams(n_stages=3, regs_per_stage=16,
                             gates_per_stage=120, scan_fraction=0.7,
                             seed=21)
    netlist = processor_partition(params, library)
    design = make_design(netlist, library, cycle_time=1500.0)
    GateSizing().assign_gains(design)

    registers = design.netlist.sequential_cells()
    print("design: %d cells, %d registers (%d scannable)"
          % (design.netlist.num_cells, len(registers),
             sum(1 for r in registers if r.gate_type.name == "SDFF")))

    partitioner = Partitioner(design, seed=4)
    reflow = Reflow(partitioner)
    optimizer = ClockScanOptimizer(regs_per_buffer=6)
    while not partitioner.done:
        partitioner.cut()
        reflow.run()
        for stage in optimizer.apply_for_status(design,
                                                partitioner.status):
            print("status %3d: stage %-6s | clock WL %6.0f, "
                  "scan WL %6.0f, overflow %5.0f"
                  % (partitioner.status, stage, clock_length(design),
                     scan_length(design), design.grid.total_overflow()))

    GateSizing().link_cells(design)
    arrivals = [design.timing.arrival(r.pin("CK"))
                for r in design.netlist.sequential_cells()]
    buffers = [c for c in design.netlist.cells() if c.is_clock_buffer]
    print()
    print("clock tree: %d buffers, insertion delay %.1f-%.1f ps, "
          "skew %.1f ps"
          % (len(buffers), min(arrivals), max(arrivals),
             max(arrivals) - min(arrivals)))
    print("final clock wirelength %.0f tracks, scan wirelength %.0f "
          "tracks" % (clock_length(design), scan_length(design)))


if __name__ == "__main__":
    main()
