"""The whole pipeline: unmapped logic -> synthesis -> TPS.

Section 5: "technology independent optimization, technology mapping
and the early part of the timing optimization stage ... employ a
gain-based (load-independent) delay model.  As a result, the effect of
wire load models on area-delay tradeoffs performed is minimized."

This example starts from an And-Inverter Graph (no gates chosen yet),
balances it, technology-maps it onto the library under the gain model,
verifies functional equivalence by simulation, and then runs the TPS
placement+synthesis flow on the mapped netlist.

Run:  python examples/synthesis_to_placement.py
"""

import random

from repro import MapperOptions, TPSScenario, default_library, make_design
from repro.synth import balance, synthesize
from repro.synth.flow import evaluate_netlist
from repro.timing.graph import TimingGraph
from repro.workloads import random_aig


def main() -> None:
    library = default_library()

    aig = random_aig(n_inputs=12, n_nodes=500, n_outputs=12, seed=42)
    print("unmapped: %d AND nodes, depth %d" % (aig.num_ands,
                                                aig.depth()))
    balanced = balance(aig)
    print("balanced: %d AND nodes, depth %d" % (balanced.num_ands,
                                                balanced.depth()))

    netlist = synthesize(aig, library, MapperOptions(mode="delay"),
                         name="synth_demo")
    levels = TimingGraph(netlist).max_level()
    print("mapped:   %d cells, %d logic levels"
          % (len(netlist.logic_cells()), levels))

    # prove the mapping is the same boolean function
    rng = random.Random(7)
    vectors = {name: rng.getrandbits(64) for name in aig.inputs}
    assert aig.simulate(vectors) == evaluate_netlist(netlist, vectors)
    print("simulation check: mapped netlist == source AIG")

    design = make_design(netlist, library, cycle_time=2600.0)
    print("running TPS on the mapped netlist ...")
    report = TPSScenario(design).run()
    print("final slack %.1f ps, wirelength %.0f tracks, routable %s"
          % (report.worst_slack, report.wirelength, report.routable))


if __name__ == "__main__":
    main()
