"""Strong moves: the meander of Figure 3 and the Steiner net of Figure 4.

Demonstrates the core insight of circuit migration (section 4.2):
moving any *single* circuit on a critical meander cannot improve the
timing — only the collective motion of the right set does.  The
``CircuitMigration`` transform discovers that set from the incremental
timing analyzer.

Run:  python examples/strong_moves.py
"""

from repro import DelayMode, Point, Rect, TimingConstraints, default_library
from repro.design import Design
from repro.netlist import Netlist
from repro.transforms import CircuitMigration


def build_meander():
    """Figure 3: fixed A, B on a line; C, D, E meander away from it."""
    library = default_library()
    netlist = Netlist("meander")
    cells = {name: netlist.add_cell(name, library.smallest("INV"))
             for name in ("C", "D", "E")}
    a = netlist.add_input_port("A")
    b = netlist.add_output_port("B")
    prev = a.pin("Z")
    for name in ("C", "D", "E"):
        net = netlist.add_net("n_" + name)
        netlist.connect(prev, net)
        netlist.connect(cells[name].pin("A"), net)
        prev = cells[name].pin("Z")
    last = netlist.add_net("n_B")
    netlist.connect(prev, last)
    netlist.connect(b.pin("A"), last)

    design = Design(netlist, library, Rect(0, 0, 48, 32),
                    TimingConstraints(cycle_time=20.0),
                    mode=DelayMode.LOAD)
    netlist.move_cell(a, Point(0, 0))
    netlist.move_cell(b, Point(40, 0))
    netlist.move_cell(cells["C"], Point(10, 20))
    netlist.move_cell(cells["D"], Point(20, 20))
    netlist.move_cell(cells["E"], Point(30, 20))
    return design, cells


def main() -> None:
    design, cells = build_meander()
    engine = design.timing
    base = engine.worst_slack()
    print("meander: A(0,0) -> C(10,20) -> D(20,20) -> E(30,20) -> B(40,0)")
    print("initial worst slack %.2f ps, wirelength %.0f tracks"
          % (base, design.total_wirelength()))
    print()

    print("individual moves (flatten one cell to y=0):")
    for name in ("C", "D", "E"):
        cell = cells[name]
        old = cell.position
        design.netlist.move_cell(cell, Point(old.x, 0.0))
        delta = engine.worst_slack() - base
        print("  move %s alone: slack change %+7.2f ps  -> rejected"
              % (name, delta))
        design.netlist.move_cell(cell, old)

    print()
    print("running CircuitMigration (strong moves) ...")
    result = CircuitMigration(max_group_size=4).run(design)
    print("  %d strong move(s) applied" % result.accepted)
    for name in ("C", "D", "E"):
        p = cells[name].position
        print("  %s now at (%g, %g)" % (name, p.x, p.y))
    print("final worst slack %.2f ps (%+.2f), wirelength %.0f tracks"
          % (engine.worst_slack(), engine.worst_slack() - base,
             design.total_wirelength()))


if __name__ == "__main__":
    main()
